//! # wcet-arbiter — shared-bus arbitration and memory control
//!
//! Bandwidth resources (paper §5) are reallocated every cycle; what makes
//! them analysable is an arbiter whose worst-case grant delay can be
//! bounded. Every arbiter here implements both faces of that contract:
//!
//! * the **cycle-level grant rule** ([`Arbiter::grant`]) used by the
//!   `wcet-sim` bus, and
//! * the **analysis-side bound** ([`Arbiter::worst_case_delay`]) used by
//!   the WCET analyser —
//!
//! and a property test checks the first never exceeds the second.
//!
//! Implemented schemes, mapped to the survey:
//!
//! | Module | Scheme | Paper §, source |
//! |---|---|---|
//! | [`round_robin`] | round-robin, bound `D = N·L − 1` | §5.3 |
//! | [`tdma`] | slot-table TDMA (offset-precise + offset-blind bounds) | §5.2, Rosén et al. \[33\] |
//! | [`mbba`] | multi-bandwidth weighted arbitration | §5.3, Bourgade et al. \[2\] |
//! | [`fixed_priority`] | one hard real-time requester first | §5.3, Mische et al. \[22\] (CarCore) |
//! | [`mod@memory_wheel`] | PRET memory wheel (equal private windows) | §5.3, Lickly et al. \[19\] |
//! | [`memctrl`] | analysable memory controller | §5.3, Paolieri et al. \[24\] |

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod fixed_priority;
pub mod mbba;
pub mod memctrl;
pub mod memory_wheel;
pub mod replay;
pub mod round_robin;
pub mod tdma;

pub use fixed_priority::FixedPriority;
pub use mbba::MultiBandwidth;
pub use memctrl::{MemoryController, MemoryKind};
pub use memory_wheel::memory_wheel;
pub use replay::{replay_trace, TraceRequest};
pub use round_robin::RoundRobin;
pub use tdma::{Slot, Tdma};

/// A bus arbiter: decides, whenever the bus is free, which pending
/// requester starts its (non-preemptive, `transfer_len`-cycle) transfer.
pub trait Arbiter: std::fmt::Debug + Send {
    /// Number of requesters this arbiter serves.
    fn num_requesters(&self) -> usize;

    /// Called by the bus at `cycle` when it is free. `pending[i]` is true
    /// if requester `i` has a transfer waiting. Returns the requester that
    /// starts now, or `None` (e.g. TDMA: current slot owner idle or the
    /// transfer would not fit the slot remainder).
    fn grant(&mut self, cycle: u64, pending: &[bool], transfer_len: u64) -> Option<usize>;

    /// Analysis-side upper bound on the *waiting* time of `requester`: the
    /// number of cycles between issuing a request and the start of its
    /// transfer, valid for any behaviour of the other requesters. `None`
    /// means unbounded (the requester is not timing-isolated under this
    /// scheme).
    fn worst_case_delay(&self, requester: usize, transfer_len: u64) -> Option<u64>;

    /// Clears mutable state (simulation restart).
    fn reset(&mut self);

    /// True if a lone requester on an idle bus is always granted
    /// immediately (round-robin, fixed priority). Slot-table arbiters
    /// (TDMA, MBBA, memory wheel) are *not* work-conserving: a request
    /// outside its owner's slot waits even with no competition — so even a
    /// "task considered alone" analysis must charge their delay bound.
    fn work_conserving(&self) -> bool;
}

/// Declarative arbiter selection shared by the analyser, the simulator
/// configuration and the experiment harness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArbiterKind {
    /// Round-robin among all requesters.
    RoundRobin,
    /// TDMA with equal slots of the given length.
    TdmaEqual {
        /// Slot length in cycles.
        slot_len: u64,
    },
    /// TDMA with an explicit slot table.
    Tdma {
        /// Slot table (owner, length).
        slots: Vec<(usize, u64)>,
    },
    /// Weighted multi-bandwidth arbitration (Bourgade et al.).
    Mbba {
        /// Per-requester bandwidth weights (must be non-zero).
        weights: Vec<u32>,
        /// Slot length in cycles.
        slot_len: u64,
    },
    /// Fixed priority with one hard real-time requester served first.
    FixedPriority {
        /// The HRT requester index.
        hrt: usize,
    },
    /// PRET-style memory wheel: equal private windows.
    MemoryWheel {
        /// Window length in cycles.
        window: u64,
    },
}

impl ArbiterKind {
    /// Instantiates the arbiter for `n` requesters.
    ///
    /// # Panics
    ///
    /// Panics if the parameters are inconsistent (e.g. wrong weight count);
    /// configurations are built programmatically, so this indicates a bug
    /// in the experiment setup.
    #[must_use]
    pub fn build(&self, n: usize) -> Box<dyn Arbiter> {
        match self {
            ArbiterKind::RoundRobin => Box::new(RoundRobin::new(n)),
            ArbiterKind::TdmaEqual { slot_len } => {
                let slots: Vec<Slot> = (0..n)
                    .map(|o| Slot {
                        owner: o,
                        len: *slot_len,
                    })
                    .collect();
                Box::new(Tdma::new(n, slots).expect("equal-slot TDMA is well-formed"))
            }
            ArbiterKind::Tdma { slots } => {
                let slots: Vec<Slot> = slots
                    .iter()
                    .map(|&(owner, len)| Slot { owner, len })
                    .collect();
                Box::new(Tdma::new(n, slots).expect("slot table must be well-formed"))
            }
            ArbiterKind::Mbba { weights, slot_len } => {
                assert_eq!(weights.len(), n, "one weight per requester");
                Box::new(
                    MultiBandwidth::new(weights.clone(), *slot_len)
                        .expect("MBBA weights must be non-zero"),
                )
            }
            ArbiterKind::FixedPriority { hrt } => {
                assert!(*hrt < n, "HRT index in range");
                Box::new(FixedPriority::new(n, *hrt))
            }
            ArbiterKind::MemoryWheel { window } => Box::new(memory_wheel(n, *window)),
        }
    }
}
