//! # wcet-arbiter — shared-bus arbitration and memory control
//!
//! Bandwidth resources (paper §5) are reallocated every cycle; what makes
//! them analysable is an arbiter whose worst-case grant delay can be
//! bounded. Every arbiter here implements both faces of that contract:
//!
//! * the **cycle-level grant rule** ([`Arbiter::grant`]) used by the
//!   `wcet-sim` bus, and
//! * the **analysis-side bound** ([`Arbiter::worst_case_delay`]) used by
//!   the WCET analyser —
//!
//! and a property test checks the first never exceeds the second.
//!
//! Implemented schemes, mapped to the survey:
//!
//! | Module | Scheme | Paper §, source |
//! |---|---|---|
//! | [`round_robin`] | round-robin, bound `D = N·L − 1` | §5.3 |
//! | [`tdma`] | slot-table TDMA (offset-precise + offset-blind bounds) | §5.2, Rosén et al. \[33\] |
//! | [`mbba`] | multi-bandwidth weighted arbitration | §5.3, Bourgade et al. \[2\] |
//! | [`fixed_priority`] | one hard real-time requester first | §5.3, Mische et al. \[22\] (CarCore) |
//! | [`mod@memory_wheel`] | PRET memory wheel (equal private windows) | §5.3, Lickly et al. \[19\] |
//! | [`memctrl`] | analysable memory controller | §5.3, Paolieri et al. \[24\] |
//!
//! ## Example
//!
//! Every scheme is selected declaratively through [`ArbiterKind`] (also
//! parseable from the compact spec strings scenario files use), and its
//! analysis bound always dominates the cycle-level grant rule:
//!
//! ```
//! use wcet_arbiter::ArbiterKind;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let kind: ArbiterKind = "tdma:10".parse()?;
//! assert_eq!(kind, ArbiterKind::TdmaEqual { slot_len: 10 });
//! let arbiter = kind.build(4); // four requesters
//! // A round-trip of one 8-cycle transfer can wait at most the other
//! // three slots plus the tail of its own: bounded, workload-independent.
//! let bound = arbiter.worst_case_delay(0, 8).expect("TDMA is bounded");
//! assert!(bound >= 3 * 8);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod fixed_priority;
pub mod mbba;
pub mod memctrl;
pub mod memory_wheel;
pub mod replay;
pub mod round_robin;
pub mod tdma;

pub use fixed_priority::FixedPriority;
pub use mbba::MultiBandwidth;
pub use memctrl::{MemoryController, MemoryKind};
pub use memory_wheel::memory_wheel;
pub use replay::{replay_trace, TraceRequest};
pub use round_robin::RoundRobin;
pub use tdma::{Slot, Tdma};

/// A bus arbiter: decides, whenever the bus is free, which pending
/// requester starts its (non-preemptive, `transfer_len`-cycle) transfer.
pub trait Arbiter: std::fmt::Debug + Send {
    /// Number of requesters this arbiter serves.
    fn num_requesters(&self) -> usize;

    /// Called by the bus at `cycle` when it is free. `pending[i]` is true
    /// if requester `i` has a transfer waiting. Returns the requester that
    /// starts now, or `None` (e.g. TDMA: current slot owner idle or the
    /// transfer would not fit the slot remainder).
    fn grant(&mut self, cycle: u64, pending: &[bool], transfer_len: u64) -> Option<usize>;

    /// Analysis-side upper bound on the *waiting* time of `requester`: the
    /// number of cycles between issuing a request and the start of its
    /// transfer, valid for any behaviour of the other requesters. `None`
    /// means unbounded (the requester is not timing-isolated under this
    /// scheme).
    fn worst_case_delay(&self, requester: usize, transfer_len: u64) -> Option<u64>;

    /// The earliest cycle `c ≥ from` at which [`Arbiter::grant`] *could*
    /// return `Some` for this pending mask (assuming the mask does not
    /// change until then), or `None` if no such cycle exists.
    ///
    /// This powers the simulator's event-skipping fast-forward: when
    /// every core is provably stalled, time jumps straight to the next
    /// grant opportunity instead of ticking through idle cycles. The
    /// contract is two-sided — `grant` must return `None` at every cycle
    /// in `from..c` and must not be *prevented* from granting at `c` —
    /// and is property-tested against `grant` for every scheme.
    ///
    /// The default is exact for work-conserving arbiters (any pending
    /// request is granted the moment the bus is free) and conservatively
    /// correct for every other implementation: claiming the immediate
    /// cycle simply disables skipping over this arbiter.
    fn next_grant_opportunity(
        &self,
        from: u64,
        pending: &[bool],
        transfer_len: u64,
    ) -> Option<u64> {
        let _ = transfer_len;
        pending.iter().any(|&p| p).then_some(from)
    }

    /// Clears mutable state (simulation restart).
    fn reset(&mut self);

    /// True if a lone requester on an idle bus is always granted
    /// immediately (round-robin, fixed priority). Slot-table arbiters
    /// (TDMA, MBBA, memory wheel) are *not* work-conserving: a request
    /// outside its owner's slot waits even with no competition — so even a
    /// "task considered alone" analysis must charge their delay bound.
    fn work_conserving(&self) -> bool;
}

/// Declarative arbiter selection shared by the analyser, the simulator
/// configuration and the experiment harness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArbiterKind {
    /// Round-robin among all requesters.
    RoundRobin,
    /// TDMA with equal slots of the given length.
    TdmaEqual {
        /// Slot length in cycles.
        slot_len: u64,
    },
    /// TDMA with an explicit slot table.
    Tdma {
        /// Slot table (owner, length).
        slots: Vec<(usize, u64)>,
    },
    /// Weighted multi-bandwidth arbitration (Bourgade et al.).
    Mbba {
        /// Per-requester bandwidth weights (must be non-zero).
        weights: Vec<u32>,
        /// Slot length in cycles.
        slot_len: u64,
    },
    /// Fixed priority with one hard real-time requester served first.
    FixedPriority {
        /// The HRT requester index.
        hrt: usize,
    },
    /// PRET-style memory wheel: equal private windows.
    MemoryWheel {
        /// Window length in cycles.
        window: u64,
    },
}

impl ArbiterKind {
    /// The compact spec label of this kind — the exact inverse of the
    /// [`FromStr`](std::str::FromStr) parser, so labels copied out of a
    /// report can be pasted back into a scenario spec.
    #[must_use]
    pub fn spec(&self) -> String {
        match self {
            ArbiterKind::RoundRobin => "rr".into(),
            ArbiterKind::TdmaEqual { slot_len } => format!("tdma:{slot_len}"),
            ArbiterKind::Tdma { slots } => {
                let parts: Vec<String> = slots.iter().map(|(o, l)| format!("{o}@{l}")).collect();
                format!("tdma-table:{}", parts.join(","))
            }
            ArbiterKind::Mbba { weights, slot_len } => {
                let ws: Vec<String> = weights.iter().map(u32::to_string).collect();
                format!("mbba:{}@{slot_len}", ws.join("-"))
            }
            ArbiterKind::FixedPriority { hrt } => format!("fp:{hrt}"),
            ArbiterKind::MemoryWheel { window } => format!("wheel:{window}"),
        }
    }

    /// Instantiates the arbiter for `n` requesters.
    ///
    /// # Panics
    ///
    /// Panics if the parameters are inconsistent (e.g. wrong weight count);
    /// configurations are built programmatically, so this indicates a bug
    /// in the experiment setup.
    #[must_use]
    pub fn build(&self, n: usize) -> Box<dyn Arbiter> {
        match self {
            ArbiterKind::RoundRobin => Box::new(RoundRobin::new(n)),
            ArbiterKind::TdmaEqual { slot_len } => {
                let slots: Vec<Slot> = (0..n)
                    .map(|o| Slot {
                        owner: o,
                        len: *slot_len,
                    })
                    .collect();
                Box::new(Tdma::new(n, slots).expect("equal-slot TDMA is well-formed"))
            }
            ArbiterKind::Tdma { slots } => {
                let slots: Vec<Slot> = slots
                    .iter()
                    .map(|&(owner, len)| Slot { owner, len })
                    .collect();
                Box::new(Tdma::new(n, slots).expect("slot table must be well-formed"))
            }
            ArbiterKind::Mbba { weights, slot_len } => {
                assert_eq!(weights.len(), n, "one weight per requester");
                Box::new(
                    MultiBandwidth::new(weights.clone(), *slot_len)
                        .expect("MBBA weights must be non-zero"),
                )
            }
            ArbiterKind::FixedPriority { hrt } => {
                assert!(*hrt < n, "HRT index in range");
                Box::new(FixedPriority::new(n, *hrt))
            }
            ArbiterKind::MemoryWheel { window } => Box::new(memory_wheel(n, *window)),
        }
    }
}

/// Error from parsing an [`ArbiterKind`] spec string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArbiterSpecError(String);

impl std::fmt::Display for ArbiterSpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "bad arbiter spec {:?}: expected rr | tdma:SLOT | tdma-table:O@LEN,… | \
             mbba:W1-W2-…@SLOT | fp:HRT | wheel:WINDOW",
            self.0
        )
    }
}

impl std::error::Error for ArbiterSpecError {}

/// Parses the compact arbiter spec used by declarative scenario files:
///
/// | spec | scheme |
/// |---|---|
/// | `rr` / `round_robin` | [`ArbiterKind::RoundRobin`] |
/// | `tdma:SLOT` | [`ArbiterKind::TdmaEqual`] with `SLOT`-cycle slots |
/// | `tdma-table:O@LEN,O@LEN,…` | [`ArbiterKind::Tdma`] with an explicit slot table |
/// | `mbba:W1-W2-…@SLOT` | [`ArbiterKind::Mbba`] with one weight per requester |
/// | `fp:HRT` / `fixed_priority:HRT` | [`ArbiterKind::FixedPriority`] |
/// | `wheel:WINDOW` / `memory_wheel:WINDOW` | [`ArbiterKind::MemoryWheel`] |
impl std::str::FromStr for ArbiterKind {
    type Err = ArbiterSpecError;

    fn from_str(s: &str) -> Result<ArbiterKind, ArbiterSpecError> {
        let bad = || ArbiterSpecError(s.to_string());
        let (head, arg) = match s.split_once(':') {
            Some((head, arg)) => (head.trim(), Some(arg.trim())),
            None => (s.trim(), None),
        };
        let num = |a: Option<&str>| a.and_then(|a| a.parse::<u64>().ok()).ok_or_else(bad);
        // Slot-table lengths must be positive, or the arbiter
        // constructors reject them; specs are user input, so catch it
        // here as a parse error rather than a later panic.
        let positive = |a: Option<&str>| num(a).ok().filter(|&n| n > 0).ok_or_else(bad);
        match head {
            "rr" | "round_robin" => match arg {
                None => Ok(ArbiterKind::RoundRobin),
                Some(_) => Err(bad()),
            },
            "tdma" => Ok(ArbiterKind::TdmaEqual {
                slot_len: positive(arg)?,
            }),
            "tdma-table" => {
                let slots = arg
                    .ok_or_else(bad)?
                    .split(',')
                    .map(|s| {
                        let (owner, len) = s.trim().split_once('@')?;
                        let owner = owner.trim().parse::<usize>().ok()?;
                        let len = len.trim().parse::<u64>().ok().filter(|&l| l > 0)?;
                        Some((owner, len))
                    })
                    .collect::<Option<Vec<(usize, u64)>>>()
                    .ok_or_else(bad)?;
                if slots.is_empty() {
                    return Err(bad());
                }
                Ok(ArbiterKind::Tdma { slots })
            }
            "mbba" => {
                let (weights, slot) = arg.and_then(|a| a.split_once('@')).ok_or_else(bad)?;
                let weights = weights
                    .split('-')
                    .map(|w| w.trim().parse::<u32>().ok().filter(|&w| w > 0))
                    .collect::<Option<Vec<u32>>>()
                    .ok_or_else(bad)?;
                Ok(ArbiterKind::Mbba {
                    weights,
                    slot_len: positive(Some(slot))?,
                })
            }
            "fp" | "fixed_priority" => Ok(ArbiterKind::FixedPriority {
                hrt: usize::try_from(num(arg)?).map_err(|_| bad())?,
            }),
            "wheel" | "memory_wheel" => Ok(ArbiterKind::MemoryWheel {
                window: positive(arg)?,
            }),
            _ => Err(bad()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_arbiter_specs() {
        assert_eq!("rr".parse::<ArbiterKind>(), Ok(ArbiterKind::RoundRobin));
        assert_eq!(
            "round_robin".parse::<ArbiterKind>(),
            Ok(ArbiterKind::RoundRobin)
        );
        assert_eq!(
            "tdma:16".parse::<ArbiterKind>(),
            Ok(ArbiterKind::TdmaEqual { slot_len: 16 })
        );
        assert_eq!(
            "mbba:2-1-1-1@8".parse::<ArbiterKind>(),
            Ok(ArbiterKind::Mbba {
                weights: vec![2, 1, 1, 1],
                slot_len: 8
            })
        );
        assert_eq!(
            "fp:0".parse::<ArbiterKind>(),
            Ok(ArbiterKind::FixedPriority { hrt: 0 })
        );
        assert_eq!(
            "wheel:8".parse::<ArbiterKind>(),
            Ok(ArbiterKind::MemoryWheel { window: 8 })
        );
        assert_eq!(
            "tdma-table:0@8,1@16".parse::<ArbiterKind>(),
            Ok(ArbiterKind::Tdma {
                slots: vec![(0, 8), (1, 16)]
            })
        );
        for bad in [
            "",
            "tdma",
            "tdma:x",
            "rr:1",
            "mbba:8",
            "mbba:0-1@8",
            "lottery",
            // Zero slot/window lengths would panic inside `build`.
            "tdma:0",
            "wheel:0",
            "mbba:1-1@0",
            "tdma-table:",
            "tdma-table:0@0",
            "tdma-table:x@8",
        ] {
            assert!(
                bad.parse::<ArbiterKind>().is_err(),
                "{bad:?} must not parse"
            );
        }
    }

    #[test]
    fn spec_labels_round_trip() {
        for kind in [
            ArbiterKind::RoundRobin,
            ArbiterKind::TdmaEqual { slot_len: 12 },
            ArbiterKind::Tdma {
                slots: vec![(0, 8), (1, 16), (0, 4)],
            },
            ArbiterKind::Mbba {
                weights: vec![2, 1, 1],
                slot_len: 8,
            },
            ArbiterKind::FixedPriority { hrt: 1 },
            ArbiterKind::MemoryWheel { window: 8 },
        ] {
            assert_eq!(
                kind.spec().parse::<ArbiterKind>().as_ref(),
                Ok(&kind),
                "{} must round-trip",
                kind.spec()
            );
        }
    }
}
