//! Memory-controller timing models (Paolieri et al. \[24\], paper §5.3).
//!
//! A conventional DRAM controller's latency depends on row-buffer state,
//! which is shared between cores and therefore unanalysable in isolation.
//! The *analysable memory controller* (AMC) closes the row after every
//! access: constant latency, at the price of losing row hits. Both models
//! are provided so experiments can show the predictability/throughput
//! trade-off.

/// Controller policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemoryKind {
    /// Closed-page, constant latency (analysable; Paolieri et al. \[24\]).
    Predictable {
        /// Fixed access latency in cycles.
        latency: u64,
    },
    /// Open-page with a row buffer per bank: fast on row hits, slow on row
    /// misses. Average-case friendly, worst-case opaque.
    OpenPage {
        /// Latency when the access hits the open row.
        row_hit: u64,
        /// Latency when the row must be opened (includes precharge).
        row_miss: u64,
        /// Row size in bytes.
        row_bytes: u64,
    },
}

/// A memory controller with per-access latency.
#[derive(Debug, Clone)]
pub struct MemoryController {
    kind: MemoryKind,
    /// Currently open row, for [`MemoryKind::OpenPage`].
    open_row: Option<u64>,
    accesses: u64,
    total_cycles: u64,
}

impl MemoryController {
    /// Creates a controller.
    #[must_use]
    pub fn new(kind: MemoryKind) -> MemoryController {
        MemoryController {
            kind,
            open_row: None,
            accesses: 0,
            total_cycles: 0,
        }
    }

    /// The configured policy.
    #[must_use]
    pub fn kind(&self) -> MemoryKind {
        self.kind
    }

    /// Latency of an access to byte address `addr`, updating row-buffer state.
    pub fn access(&mut self, addr: u64) -> u64 {
        let lat = match self.kind {
            MemoryKind::Predictable { latency } => latency,
            MemoryKind::OpenPage {
                row_hit,
                row_miss,
                row_bytes,
            } => {
                let row = addr / row_bytes.max(1);
                if self.open_row == Some(row) {
                    row_hit
                } else {
                    self.open_row = Some(row);
                    row_miss
                }
            }
        };
        self.accesses += 1;
        self.total_cycles += lat;
        lat
    }

    /// Analysis-side upper bound on a single access latency.
    #[must_use]
    pub fn worst_case_latency(&self) -> u64 {
        match self.kind {
            MemoryKind::Predictable { latency } => latency,
            MemoryKind::OpenPage { row_miss, .. } => row_miss,
        }
    }

    /// `(accesses, total_latency_cycles)` since construction.
    #[must_use]
    pub fn stats(&self) -> (u64, u64) {
        (self.accesses, self.total_cycles)
    }

    /// Clears row-buffer state and counters.
    pub fn reset(&mut self) {
        self.open_row = None;
        self.accesses = 0;
        self.total_cycles = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predictable_is_constant() {
        let mut m = MemoryController::new(MemoryKind::Predictable { latency: 30 });
        assert_eq!(m.access(0), 30);
        assert_eq!(m.access(0), 30);
        assert_eq!(m.access(1 << 20), 30);
        assert_eq!(m.worst_case_latency(), 30);
        assert_eq!(m.stats(), (3, 90));
    }

    #[test]
    fn open_page_row_hits_are_faster() {
        let kind = MemoryKind::OpenPage {
            row_hit: 10,
            row_miss: 40,
            row_bytes: 1024,
        };
        let mut m = MemoryController::new(kind);
        assert_eq!(m.access(0), 40); // first access opens row
        assert_eq!(m.access(512), 10); // same row
        assert_eq!(m.access(2048), 40); // new row
        assert_eq!(m.access(0), 40); // original row was closed
        assert_eq!(m.worst_case_latency(), 40);
    }

    #[test]
    fn open_page_latency_never_exceeds_bound() {
        let kind = MemoryKind::OpenPage {
            row_hit: 10,
            row_miss: 40,
            row_bytes: 256,
        };
        let mut m = MemoryController::new(kind);
        for i in 0..200u64 {
            let lat = m.access((i * 97) % 4096);
            assert!(lat <= m.worst_case_latency());
        }
    }

    #[test]
    fn reset_clears_row() {
        let kind = MemoryKind::OpenPage {
            row_hit: 10,
            row_miss: 40,
            row_bytes: 1024,
        };
        let mut m = MemoryController::new(kind);
        m.access(0);
        m.reset();
        assert_eq!(m.access(0), 40);
        assert_eq!(m.stats(), (1, 40));
    }
}
