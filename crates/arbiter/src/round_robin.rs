//! Round-robin bus arbitration (paper §5.3).
//!
//! The workhorse of task-isolation approaches: with `N` requesters and a
//! transfer length of `L` cycles, a request waits at most
//! `D = N·L − 1` cycles (the paper's formula) — a just-started transfer
//! (`L − 1` remaining) plus `N − 1` competitors served first. The bound is
//! independent of *what* the co-runners execute, which is exactly what
//! task isolation (paper §3.3) requires.

use crate::Arbiter;

/// Round-robin arbiter over `n` requesters.
#[derive(Debug, Clone)]
pub struct RoundRobin {
    n: usize,
    /// Most recently granted requester; the scan starts after it.
    last: usize,
}

impl RoundRobin {
    /// Creates a round-robin arbiter for `n` requesters.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn new(n: usize) -> RoundRobin {
        assert!(n > 0, "arbiter needs at least one requester");
        RoundRobin { n, last: n - 1 }
    }

    /// The paper's bound `N·L − 1`.
    #[must_use]
    pub fn bound(n: u64, transfer_len: u64) -> u64 {
        n * transfer_len - 1
    }
}

impl Arbiter for RoundRobin {
    fn num_requesters(&self) -> usize {
        self.n
    }

    fn grant(&mut self, _cycle: u64, pending: &[bool], _transfer_len: u64) -> Option<usize> {
        debug_assert_eq!(pending.len(), self.n);
        for i in 1..=self.n {
            let cand = (self.last + i) % self.n;
            if pending[cand] {
                self.last = cand;
                return Some(cand);
            }
        }
        None
    }

    fn worst_case_delay(&self, _requester: usize, transfer_len: u64) -> Option<u64> {
        Some(RoundRobin::bound(self.n as u64, transfer_len))
    }

    fn reset(&mut self) {
        self.last = self.n - 1;
    }

    fn work_conserving(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotates_fairly() {
        let mut rr = RoundRobin::new(3);
        let all = [true, true, true];
        assert_eq!(rr.grant(0, &all, 2), Some(0));
        assert_eq!(rr.grant(2, &all, 2), Some(1));
        assert_eq!(rr.grant(4, &all, 2), Some(2));
        assert_eq!(rr.grant(6, &all, 2), Some(0));
    }

    #[test]
    fn skips_idle_requesters() {
        let mut rr = RoundRobin::new(4);
        assert_eq!(rr.grant(0, &[false, false, true, false], 1), Some(2));
        assert_eq!(rr.grant(1, &[true, false, false, true], 1), Some(3));
        assert_eq!(rr.grant(2, &[true, false, false, false], 1), Some(0));
        assert_eq!(rr.grant(3, &[false, false, false, false], 1), None);
    }

    #[test]
    fn bound_formula() {
        assert_eq!(RoundRobin::bound(4, 10), 39);
        assert_eq!(RoundRobin::bound(1, 10), 9);
        let rr = RoundRobin::new(2);
        assert_eq!(rr.worst_case_delay(0, 5), Some(9));
    }

    #[test]
    fn reset_restores_initial_order() {
        let mut rr = RoundRobin::new(2);
        let all = [true, true];
        assert_eq!(rr.grant(0, &all, 1), Some(0));
        rr.reset();
        assert_eq!(rr.grant(0, &all, 1), Some(0));
    }
}
