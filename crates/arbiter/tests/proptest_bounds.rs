//! The bandwidth-side soundness property (paper §5): for every arbiter,
//! under arbitrary request traces, no observed waiting delay exceeds the
//! analysis-side `worst_case_delay` bound.

use proptest::prelude::*;
use wcet_arbiter::{
    memory_wheel, replay_trace, Arbiter, ArbiterKind, FixedPriority, MultiBandwidth, RoundRobin,
    Slot, Tdma, TraceRequest,
};

/// Generates a contention-heavy trace: each requester issues a chain of
/// requests, re-issuing `gap` cycles after the previous transfer could have
/// completed (upper-bounded pessimistically so requests never overlap).
fn chain_trace(
    n: usize,
    per_requester: usize,
    gaps: &[u64],
    transfer_len: u64,
) -> Vec<TraceRequest> {
    // Round spacing must exceed jitter + the worst service time of any
    // arbiter under test (periods are at most ~n·(L+16) here), so a
    // requester never re-issues while a request is outstanding.
    let round = (n as u64 + 1) * (transfer_len + 16) * 4 + 64;
    let mut out = Vec::new();
    for r in 0..n {
        for k in 0..per_requester {
            let jitter = gaps[(r * per_requester + k) % gaps.len()] % (round / 4);
            out.push(TraceRequest {
                issue: k as u64 * round + jitter,
                requester: r,
            });
        }
    }
    out
}

fn check_bounds(arbiter: &mut dyn Arbiter, trace: &[TraceRequest], transfer_len: u64) {
    let starts = replay_trace(arbiter, trace, transfer_len);
    for (req, &start) in trace.iter().zip(&starts) {
        let delay = start - req.issue;
        if let Some(bound) = arbiter.worst_case_delay(req.requester, transfer_len) {
            assert!(
                delay <= bound,
                "requester {} delay {delay} exceeds bound {bound}",
                req.requester
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn round_robin_bound_holds(
        n in 1usize..6,
        transfer_len in 1u64..12,
        gaps in proptest::collection::vec(0u64..40, 8),
    ) {
        let mut rr = RoundRobin::new(n);
        let trace = chain_trace(n, 4, &gaps, transfer_len);
        check_bounds(&mut rr, &trace, transfer_len);
    }

    #[test]
    fn tdma_bound_holds(
        n in 1usize..5,
        slot_extra in 0u64..10,
        transfer_len in 1u64..8,
        gaps in proptest::collection::vec(0u64..60, 8),
    ) {
        let slot_len = transfer_len + slot_extra;
        let slots: Vec<Slot> = (0..n).map(|owner| Slot { owner, len: slot_len }).collect();
        let mut t = Tdma::new(n, slots).expect("valid");
        let trace = chain_trace(n, 3, &gaps, transfer_len);
        check_bounds(&mut t, &trace, transfer_len);
    }

    #[test]
    fn mbba_bound_holds(
        weights in proptest::collection::vec(1u32..5, 1..5),
        transfer_extra in 0u64..4,
        gaps in proptest::collection::vec(0u64..50, 8),
    ) {
        let transfer_len = 2 + transfer_extra;
        let mut m = MultiBandwidth::new(weights.clone(), transfer_len).expect("valid");
        let trace = chain_trace(weights.len(), 3, &gaps, transfer_len);
        check_bounds(&mut m, &trace, transfer_len);
    }

    #[test]
    fn fixed_priority_hrt_bound_holds(
        n in 2usize..6,
        hrt_seed in 0usize..6,
        transfer_len in 1u64..10,
        gaps in proptest::collection::vec(0u64..30, 8),
    ) {
        let hrt = hrt_seed % n;
        let mut a = FixedPriority::new(n, hrt);
        let trace = chain_trace(n, 3, &gaps, transfer_len);
        check_bounds(&mut a, &trace, transfer_len);
    }

    #[test]
    fn memory_wheel_bound_holds(
        n in 1usize..7,
        window_extra in 0u64..6,
        transfer_len in 1u64..6,
        gaps in proptest::collection::vec(0u64..80, 8),
    ) {
        let mut w = memory_wheel(n, transfer_len + window_extra);
        let trace = chain_trace(n, 3, &gaps, transfer_len);
        check_bounds(&mut w, &trace, transfer_len);
    }

    /// The event-skipping contract: for every scheme and pending mask,
    /// `next_grant_opportunity(from, …)` names exactly the first cycle
    /// `≥ from` at which `grant` returns `Some` — `grant` is `None` at
    /// every skipped cycle and `Some` at the claimed one (`None` means
    /// `grant` stays `None` for at least four periods' worth of cycles).
    #[test]
    fn next_grant_opportunity_matches_grant(
        scheme in 0usize..5,
        n in 1usize..5,
        slot_extra in 0u64..6,
        transfer_len in 1u64..8,
        from in 0u64..200,
        mask_bits in 0u32..32,
        short_bits in 0u32..32,
    ) {
        let slot_len = transfer_len + slot_extra;
        // Heterogeneous TDMA tables: owners flagged in `short_bits` get a
        // slot too short for the transfer (when one exists), so the scan's
        // skip-unfitting-slot branch and the `None` outcome are exercised,
        // not just uniform all-slots-fit tables.
        let mixed_len = |owner: usize| {
            if short_bits & (1 << owner) != 0 && transfer_len > 1 {
                transfer_len - 1
            } else {
                slot_len
            }
        };
        let mut arb: Box<dyn Arbiter> = match scheme {
            0 => Box::new(RoundRobin::new(n)),
            1 => Box::new(Tdma::new(
                n,
                (0..n).map(|owner| Slot { owner, len: mixed_len(owner) }).collect(),
            ).expect("valid")),
            2 => Box::new(MultiBandwidth::new(
                (0..n).map(|i| 1 + (i as u32 % 3)).collect(),
                slot_len,
            ).expect("valid")),
            3 => Box::new(FixedPriority::new(n, 0)),
            _ => Box::new(memory_wheel(n, slot_len)),
        };
        let pending: Vec<bool> = (0..n).map(|i| mask_bits & (1 << i) != 0).collect();
        let horizon = from + 4 * (n as u64 * slot_len).max(1) + 4;
        let claimed = arb.next_grant_opportunity(from, &pending, transfer_len);
        // Probing with grant() mutates work-conserving cursors, so probe a
        // clone per cycle via reset-free schemes: all five schemes here
        // only mutate on a Some() grant, and we stop at the first Some.
        let mut first_some = None;
        for c in from..=horizon {
            if arb.grant(c, &pending, transfer_len).is_some() {
                first_some = Some(c);
                break;
            }
        }
        match claimed {
            Some(c) => prop_assert_eq!(first_some, Some(c), "claimed {} mismatch", c),
            None => prop_assert_eq!(first_some, None, "claimed never, grant said otherwise"),
        }
    }

    #[test]
    fn tdma_offset_precise_matches_replay_single_requester(
        slot_len in 2u64..10,
        offset in 0u64..40,
        transfer_len in 1u64..6,
    ) {
        prop_assume!(transfer_len <= slot_len);
        // Two-owner wheel, single live requester 0: the replay's observed
        // delay at a known offset must equal delay_at_offset exactly.
        let t = memory_wheel(2, slot_len);
        let mut t2 = t.clone();
        let trace = [TraceRequest { issue: offset, requester: 0 }];
        let starts = replay_trace(&mut t2, &trace, transfer_len);
        let expected = t.delay_at_offset(0, offset % t.period(), transfer_len)
            .expect("fits");
        prop_assert_eq!(starts[0] - offset, expected);
    }
}

#[test]
fn arbiter_kind_builds_all_variants() {
    let kinds = [
        ArbiterKind::RoundRobin,
        ArbiterKind::TdmaEqual { slot_len: 4 },
        ArbiterKind::Tdma {
            slots: vec![(0, 4), (1, 2), (0, 2)],
        },
        ArbiterKind::Mbba {
            weights: vec![2, 1],
            slot_len: 2,
        },
        ArbiterKind::FixedPriority { hrt: 0 },
        ArbiterKind::MemoryWheel { window: 4 },
    ];
    for k in kinds {
        let a = k.build(2);
        assert_eq!(a.num_requesters(), 2);
    }
}

#[test]
fn next_grant_opportunity_mixed_table_edges() {
    // Owner 0's slots fit an 8-cycle transfer, owner 1's never do.
    let t = Tdma::new(
        2,
        vec![Slot { owner: 0, len: 12 }, Slot { owner: 1, len: 4 }],
    )
    .expect("valid");
    // Only the unfitting owner pending: never grantable.
    assert_eq!(t.next_grant_opportunity(0, &[false, true], 8), None);
    // From inside owner 1's slot, the fitting owner's next chance is the
    // period wrap back to slot 0 (offset 16 ≡ 0).
    assert_eq!(t.next_grant_opportunity(13, &[true, false], 8), Some(16));
    // From late in owner 0's own slot (offset 6: 6 cycles left < 8), the
    // scan must skip both the unfitting remainder and owner 1's slot.
    assert_eq!(t.next_grant_opportunity(6, &[true, false], 8), Some(16));
    // A fitting offset is claimed immediately.
    assert_eq!(t.next_grant_opportunity(4, &[true, true], 8), Some(4));
}

#[test]
fn round_robin_bound_is_tight() {
    // Construct the exact worst case: request issued one cycle after a
    // competitor's transfer starts, with all other requesters ahead.
    let n = 4;
    let transfer_len = 5;
    let mut rr = RoundRobin::new(n);
    let mut trace = Vec::new();
    // Requester 1..3 and 0 again saturate the bus from cycle 0; the victim
    // (requester 0 again later) issues at cycle 1.
    for r in 1..n {
        trace.push(TraceRequest {
            issue: 0,
            requester: r,
        });
    }
    trace.push(TraceRequest {
        issue: 1,
        requester: 0,
    });
    let starts = replay_trace(&mut rr, &trace, transfer_len);
    let victim_delay = starts[n - 1] - 1;
    // This scenario achieves (n-1)·L − 1: the victim misses cycle 0's
    // arbitration by one cycle and then waits behind n−1 full transfers.
    assert_eq!(victim_delay, (n as u64 - 1) * transfer_len - 1);
    let bound = RoundRobin::bound(n as u64, transfer_len);
    assert!(victim_delay <= bound);
    assert!(
        bound - victim_delay <= transfer_len,
        "bound should be near-tight"
    );
}
