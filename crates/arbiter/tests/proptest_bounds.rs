//! The bandwidth-side soundness property (paper §5): for every arbiter,
//! under arbitrary request traces, no observed waiting delay exceeds the
//! analysis-side `worst_case_delay` bound.

use proptest::prelude::*;
use wcet_arbiter::{
    memory_wheel, replay_trace, Arbiter, ArbiterKind, FixedPriority, MultiBandwidth, RoundRobin,
    Slot, Tdma, TraceRequest,
};

/// Generates a contention-heavy trace: each requester issues a chain of
/// requests, re-issuing `gap` cycles after the previous transfer could have
/// completed (upper-bounded pessimistically so requests never overlap).
fn chain_trace(
    n: usize,
    per_requester: usize,
    gaps: &[u64],
    transfer_len: u64,
) -> Vec<TraceRequest> {
    // Round spacing must exceed jitter + the worst service time of any
    // arbiter under test (periods are at most ~n·(L+16) here), so a
    // requester never re-issues while a request is outstanding.
    let round = (n as u64 + 1) * (transfer_len + 16) * 4 + 64;
    let mut out = Vec::new();
    for r in 0..n {
        for k in 0..per_requester {
            let jitter = gaps[(r * per_requester + k) % gaps.len()] % (round / 4);
            out.push(TraceRequest {
                issue: k as u64 * round + jitter,
                requester: r,
            });
        }
    }
    out
}

fn check_bounds(arbiter: &mut dyn Arbiter, trace: &[TraceRequest], transfer_len: u64) {
    let starts = replay_trace(arbiter, trace, transfer_len);
    for (req, &start) in trace.iter().zip(&starts) {
        let delay = start - req.issue;
        if let Some(bound) = arbiter.worst_case_delay(req.requester, transfer_len) {
            assert!(
                delay <= bound,
                "requester {} delay {delay} exceeds bound {bound}",
                req.requester
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn round_robin_bound_holds(
        n in 1usize..6,
        transfer_len in 1u64..12,
        gaps in proptest::collection::vec(0u64..40, 8),
    ) {
        let mut rr = RoundRobin::new(n);
        let trace = chain_trace(n, 4, &gaps, transfer_len);
        check_bounds(&mut rr, &trace, transfer_len);
    }

    #[test]
    fn tdma_bound_holds(
        n in 1usize..5,
        slot_extra in 0u64..10,
        transfer_len in 1u64..8,
        gaps in proptest::collection::vec(0u64..60, 8),
    ) {
        let slot_len = transfer_len + slot_extra;
        let slots: Vec<Slot> = (0..n).map(|owner| Slot { owner, len: slot_len }).collect();
        let mut t = Tdma::new(n, slots).expect("valid");
        let trace = chain_trace(n, 3, &gaps, transfer_len);
        check_bounds(&mut t, &trace, transfer_len);
    }

    #[test]
    fn mbba_bound_holds(
        weights in proptest::collection::vec(1u32..5, 1..5),
        transfer_extra in 0u64..4,
        gaps in proptest::collection::vec(0u64..50, 8),
    ) {
        let transfer_len = 2 + transfer_extra;
        let mut m = MultiBandwidth::new(weights.clone(), transfer_len).expect("valid");
        let trace = chain_trace(weights.len(), 3, &gaps, transfer_len);
        check_bounds(&mut m, &trace, transfer_len);
    }

    #[test]
    fn fixed_priority_hrt_bound_holds(
        n in 2usize..6,
        hrt_seed in 0usize..6,
        transfer_len in 1u64..10,
        gaps in proptest::collection::vec(0u64..30, 8),
    ) {
        let hrt = hrt_seed % n;
        let mut a = FixedPriority::new(n, hrt);
        let trace = chain_trace(n, 3, &gaps, transfer_len);
        check_bounds(&mut a, &trace, transfer_len);
    }

    #[test]
    fn memory_wheel_bound_holds(
        n in 1usize..7,
        window_extra in 0u64..6,
        transfer_len in 1u64..6,
        gaps in proptest::collection::vec(0u64..80, 8),
    ) {
        let mut w = memory_wheel(n, transfer_len + window_extra);
        let trace = chain_trace(n, 3, &gaps, transfer_len);
        check_bounds(&mut w, &trace, transfer_len);
    }

    #[test]
    fn tdma_offset_precise_matches_replay_single_requester(
        slot_len in 2u64..10,
        offset in 0u64..40,
        transfer_len in 1u64..6,
    ) {
        prop_assume!(transfer_len <= slot_len);
        // Two-owner wheel, single live requester 0: the replay's observed
        // delay at a known offset must equal delay_at_offset exactly.
        let t = memory_wheel(2, slot_len);
        let mut t2 = t.clone();
        let trace = [TraceRequest { issue: offset, requester: 0 }];
        let starts = replay_trace(&mut t2, &trace, transfer_len);
        let expected = t.delay_at_offset(0, offset % t.period(), transfer_len)
            .expect("fits");
        prop_assert_eq!(starts[0] - offset, expected);
    }
}

#[test]
fn arbiter_kind_builds_all_variants() {
    let kinds = [
        ArbiterKind::RoundRobin,
        ArbiterKind::TdmaEqual { slot_len: 4 },
        ArbiterKind::Tdma {
            slots: vec![(0, 4), (1, 2), (0, 2)],
        },
        ArbiterKind::Mbba {
            weights: vec![2, 1],
            slot_len: 2,
        },
        ArbiterKind::FixedPriority { hrt: 0 },
        ArbiterKind::MemoryWheel { window: 4 },
    ];
    for k in kinds {
        let a = k.build(2);
        assert_eq!(a.num_requesters(), 2);
    }
}

#[test]
fn round_robin_bound_is_tight() {
    // Construct the exact worst case: request issued one cycle after a
    // competitor's transfer starts, with all other requesters ahead.
    let n = 4;
    let transfer_len = 5;
    let mut rr = RoundRobin::new(n);
    let mut trace = Vec::new();
    // Requester 1..3 and 0 again saturate the bus from cycle 0; the victim
    // (requester 0 again later) issues at cycle 1.
    for r in 1..n {
        trace.push(TraceRequest {
            issue: 0,
            requester: r,
        });
    }
    trace.push(TraceRequest {
        issue: 1,
        requester: 0,
    });
    let starts = replay_trace(&mut rr, &trace, transfer_len);
    let victim_delay = starts[n - 1] - 1;
    // This scenario achieves (n-1)·L − 1: the victim misses cycle 0's
    // arbitration by one cycle and then waits behind n−1 full transfers.
    assert_eq!(victim_delay, (n as u64 - 1) * transfer_len - 1);
    let bound = RoundRobin::bound(n as u64, transfer_len);
    assert!(victim_delay <= bound);
    assert!(
        bound - victim_delay <= transfer_len,
        "bound should be near-tight"
    );
}
