//! The two-tier kernel's headline claim, measured: the certified f64
//! path (`solve_lp` / `solve_ilp`) against the exact tier alone
//! (`solve_lp_exact`) on phase-1-heavy LP shapes. CI runs this file with
//! `--test` (criterion smoke mode) so it can never bit-rot; both paths
//! are also asserted to agree before timing starts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wcet_ilp::{solve_lp, solve_lp_exact, CmpOp, LinExpr, LpModel};

/// A transportation-shaped LP (supply `<=` rows, demand `>=` rows so
/// phase 1 does real work), the same shape `benches/ilp.rs` in
/// `wcet-bench` uses for its sparse-vs-dense group.
fn transport_model(n: usize) -> LpModel {
    let mut m = LpModel::new();
    let vars: Vec<Vec<_>> = (0..n)
        .map(|i| (0..n).map(|j| m.add_var(format!("x{i}_{j}"))).collect())
        .collect();
    for (i, row) in vars.iter().enumerate() {
        let mut supply = LinExpr::new();
        for &v in row {
            supply.add_term(v, 1);
        }
        m.add_constraint(supply, CmpOp::Le, 10 + i as i64);
    }
    for j in 0..n {
        let mut demand = LinExpr::new();
        for row in &vars {
            demand.add_term(row[j], 1);
        }
        m.add_constraint(demand, CmpOp::Ge, 3 + (j % 3) as i64);
    }
    let mut obj = LinExpr::new();
    for (i, row) in vars.iter().enumerate() {
        for (j, &v) in row.iter().enumerate() {
            obj.add_term(v, -(((i * 7 + j * 3) % 11) as i64 + 1));
        }
    }
    m.set_objective(obj);
    m
}

fn bench_fast_vs_exact(c: &mut Criterion) {
    let mut g = c.benchmark_group("fast_vs_exact");
    g.sample_size(10);
    for n in [4usize, 8, 12] {
        let model = transport_model(n);
        let fast = solve_lp(&model);
        let exact = solve_lp_exact(&model);
        assert_eq!(fast.objective, exact.objective, "tiers disagree on n={n}");
        assert_eq!(fast.stats.fallbacks, 0, "transport LP should certify");
        g.bench_with_input(BenchmarkId::new("certified", n), &n, |b, _| {
            b.iter(|| solve_lp(&model).objective)
        });
        g.bench_with_input(BenchmarkId::new("exact", n), &n, |b, _| {
            b.iter(|| solve_lp_exact(&model).objective)
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fast_vs_exact);
criterion_main!(benches);
