//! The pre-refactor dense-tableau two-phase primal simplex (Bland's
//! rule), preserved as the **differential-test oracle** for the sparse
//! revised solver in [`crate::simplex`].
//!
//! Behind the `dense` feature (on by default). Nothing in the production
//! path calls this; `tests/simplex_equivalence.rs` cross-checks every
//! proptest-generated model against it, and the `ilp` criterion bench
//! uses it as the cold baseline. Do not "improve" this module — its value
//! is being the unchanged reference implementation.

use crate::model::{CmpOp, LpModel, Solution, SolveStatus};
use crate::rational::Rat;

/// Solves the LP relaxation of `model` with the dense reference solver.
///
/// The returned [`Solution`] carries exact rational variable values; its
/// `status` distinguishes optimal / infeasible / unbounded.
#[must_use]
pub fn solve_lp_dense(model: &LpModel) -> Solution {
    Simplex::build(model).solve(model)
}

struct Simplex {
    /// Dense tableau rows (canonical form is maintained across pivots).
    a: Vec<Vec<Rat>>,
    /// Right-hand sides (kept non-negative).
    b: Vec<Rat>,
    /// Basic variable (column index) of each row.
    basis: Vec<usize>,
    /// Per-column: is this an artificial variable?
    artificial: Vec<bool>,
    /// Number of structural (model) variables; they occupy columns `0..n`.
    n_struct: usize,
}

impl Simplex {
    fn build(model: &LpModel) -> Simplex {
        let n = model.num_vars();
        let m = model.num_constraints();
        let mut rows: Vec<Vec<Rat>> = Vec::with_capacity(m);
        let mut b: Vec<Rat> = Vec::with_capacity(m);
        let mut ops: Vec<CmpOp> = Vec::with_capacity(m);
        for c in model.constraints() {
            let mut row = vec![Rat::ZERO; n];
            for (v, coeff) in c.expr.terms() {
                row[v.index()] = coeff;
            }
            let (row, rhs, op) = if c.rhs < Rat::ZERO {
                // Normalize to rhs >= 0.
                let flipped = match c.op {
                    CmpOp::Le => CmpOp::Ge,
                    CmpOp::Ge => CmpOp::Le,
                    CmpOp::Eq => CmpOp::Eq,
                };
                (row.iter().map(|&x| -x).collect(), -c.rhs, flipped)
            } else {
                (row, c.rhs, c.op)
            };
            rows.push(row);
            b.push(rhs);
            ops.push(op);
        }

        // Column layout: [structural | slacks/surplus | artificials].
        let mut extra_cols = 0usize;
        for op in &ops {
            extra_cols += match op {
                CmpOp::Le => 1, // slack
                CmpOp::Ge => 2, // surplus + artificial
                CmpOp::Eq => 1, // artificial
            };
        }
        let total = n + extra_cols;
        let mut a: Vec<Vec<Rat>> = rows
            .into_iter()
            .map(|mut r| {
                r.resize(total, Rat::ZERO);
                r
            })
            .collect();
        let mut artificial = vec![false; total];
        let mut basis = vec![usize::MAX; m];
        let mut next = n;
        for (i, op) in ops.iter().enumerate() {
            match op {
                CmpOp::Le => {
                    a[i][next] = Rat::ONE; // slack
                    basis[i] = next;
                    next += 1;
                }
                CmpOp::Ge => {
                    a[i][next] = -Rat::ONE; // surplus
                    next += 1;
                    a[i][next] = Rat::ONE; // artificial
                    artificial[next] = true;
                    basis[i] = next;
                    next += 1;
                }
                CmpOp::Eq => {
                    a[i][next] = Rat::ONE; // artificial
                    artificial[next] = true;
                    basis[i] = next;
                    next += 1;
                }
            }
        }
        debug_assert_eq!(next, total);
        Simplex {
            a,
            b,
            basis,
            artificial,
            n_struct: n,
        }
    }

    fn num_cols(&self) -> usize {
        self.artificial.len()
    }

    /// Reduced-cost row for cost vector `c`, canonicalized w.r.t. the
    /// current basis: `r_j = c_j - Σ_i c_{basis(i)} a_ij`.
    fn reduced_costs(&self, c: &[Rat]) -> Vec<Rat> {
        let mut r = c.to_vec();
        for (i, &bi) in self.basis.iter().enumerate() {
            let cb = c[bi];
            if !cb.is_zero() {
                for (rj, &aij) in r.iter_mut().zip(&self.a[i]) {
                    *rj -= cb * aij;
                }
            }
        }
        r
    }

    fn objective_value(&self, c: &[Rat]) -> Rat {
        let mut z = Rat::ZERO;
        for (i, &bi) in self.basis.iter().enumerate() {
            z += c[bi] * self.b[i];
        }
        z
    }

    fn pivot(&mut self, row: usize, col: usize) {
        let p = self.a[row][col];
        debug_assert!(!p.is_zero(), "pivot on zero element");
        let inv = p.recip();
        for j in 0..self.num_cols() {
            self.a[row][j] = self.a[row][j] * inv;
        }
        self.b[row] = self.b[row] * inv;
        for i in 0..self.a.len() {
            if i == row {
                continue;
            }
            let f = self.a[i][col];
            if f.is_zero() {
                continue;
            }
            for j in 0..self.num_cols() {
                let adj = f * self.a[row][j];
                self.a[i][j] -= adj;
            }
            let adj = f * self.b[row];
            self.b[i] -= adj;
        }
        self.basis[row] = col;
    }

    /// Runs primal simplex for cost vector `c` with Bland's rule.
    /// `allow(col)` filters candidate entering columns.
    /// Returns `false` if the problem is unbounded in this phase.
    fn optimize(&mut self, c: &[Rat], allow: impl Fn(usize) -> bool) -> bool {
        loop {
            let r = self.reduced_costs(c);
            // Bland: smallest-index column with positive reduced cost.
            let entering = (0..self.num_cols())
                .find(|&j| allow(j) && !self.basis.contains(&j) && r[j] > Rat::ZERO);
            let Some(col) = entering else {
                return true; // optimal
            };
            // Ratio test; Bland tie-break on smallest basis variable index.
            let mut best: Option<(usize, Rat)> = None;
            for i in 0..self.a.len() {
                if self.a[i][col] > Rat::ZERO {
                    let ratio = self.b[i] / self.a[i][col];
                    let better = match &best {
                        None => true,
                        Some((bi, br)) => {
                            ratio < *br || (ratio == *br && self.basis[i] < self.basis[*bi])
                        }
                    };
                    if better {
                        best = Some((i, ratio));
                    }
                }
            }
            let Some((row, _)) = best else {
                return false; // unbounded direction
            };
            self.pivot(row, col);
        }
    }

    fn solve(mut self, model: &LpModel) -> Solution {
        let total = self.num_cols();

        // Phase 1: maximize -(sum of artificials); feasible iff optimum 0.
        if self.artificial.iter().any(|&x| x) {
            let c1: Vec<Rat> = (0..total)
                .map(|j| {
                    if self.artificial[j] {
                        -Rat::ONE
                    } else {
                        Rat::ZERO
                    }
                })
                .collect();
            let ok = self.optimize(&c1, |_| true);
            debug_assert!(ok, "phase 1 is never unbounded (objective <= 0)");
            if self.objective_value(&c1) < Rat::ZERO {
                return Solution::non_optimal(SolveStatus::Infeasible);
            }
            // Drive remaining artificial basics (necessarily at 0) out, or
            // drop redundant rows.
            let mut row = 0;
            while row < self.a.len() {
                if self.artificial[self.basis[row]] {
                    let col =
                        (0..total).find(|&j| !self.artificial[j] && !self.a[row][j].is_zero());
                    match col {
                        Some(c) => self.pivot(row, c),
                        None => {
                            // Redundant constraint; remove the row.
                            self.a.remove(row);
                            self.b.remove(row);
                            self.basis.remove(row);
                            continue;
                        }
                    }
                }
                row += 1;
            }
        }

        // Phase 2: the real objective over structural columns only.
        let mut c2 = vec![Rat::ZERO; total];
        for (v, coeff) in model.objective().terms() {
            c2[v.index()] = coeff;
        }
        let artificial = self.artificial.clone();
        if !self.optimize(&c2, |j| !artificial[j]) {
            return Solution::non_optimal(SolveStatus::Unbounded);
        }

        let mut values = vec![Rat::ZERO; self.n_struct];
        for (i, &bi) in self.basis.iter().enumerate() {
            if bi < self.n_struct {
                values[bi] = self.b[i];
            }
        }
        let objective = model.objective().eval(&values);
        Solution {
            status: SolveStatus::Optimal,
            objective,
            values,
            stats: crate::model::SolveStats::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{LinExpr, LpModel};

    fn expr(terms: &[(crate::model::VarId, i64)]) -> LinExpr {
        let mut e = LinExpr::new();
        for &(v, c) in terms {
            e.add_term(v, c);
        }
        e
    }

    #[test]
    fn oracle_still_solves_the_textbook_model() {
        // max 3x + 2y  s.t.  x + y <= 4,  x + 3y <= 6  → 12 at (4, 0).
        let mut m = LpModel::new();
        let x = m.add_var("x");
        let y = m.add_var("y");
        m.add_constraint(expr(&[(x, 1), (y, 1)]), CmpOp::Le, 4);
        m.add_constraint(expr(&[(x, 1), (y, 3)]), CmpOp::Le, 6);
        m.set_objective(expr(&[(x, 3), (y, 2)]));
        let s = solve_lp_dense(&m);
        assert_eq!(s.status, SolveStatus::Optimal);
        assert_eq!(s.objective, Rat::int(12));
    }
}
