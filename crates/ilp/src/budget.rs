//! Cooperative per-cell budgets for simplex effort.
//!
//! The mirror of `wcet_ir::budget` for the solver layer: a campaign
//! worker arms a [`BudgetScope`] around one cell's analysis, and every
//! pivot of either simplex tier (exact rational or f64 fast path)
//! charges against it. Exhaustion — too many pivots, or the cell's
//! wall-clock deadline — aborts the solve by unwinding with a typed
//! [`BudgetExceeded`] payload that the supervisor catches at the cell
//! boundary. Solver objects are per-call locals, so the unwind cannot
//! corrupt shared state (the warm-start context records a basis only
//! after a solve returns).
//!
//! The two budget modules are deliberately separate: this crate is a
//! free-standing LP/ILP solver with no IR dependency, and each module
//! meters the resource its own crate owns.

use std::cell::Cell;
use std::fmt;
use std::time::Instant;

/// The unwind payload of an exhausted budget. Catch with
/// `std::panic::catch_unwind` and downcast to classify the abort.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BudgetExceeded {
    /// What ran out (e.g. `"simplex pivots"`).
    pub resource: &'static str,
    /// The armed limit.
    pub limit: u64,
}

impl fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cell budget exceeded: over {} {}",
            self.limit, self.resource
        )
    }
}

#[derive(Clone, Copy)]
struct State {
    remaining: u64,
    limit: u64,
    deadline: Option<Instant>,
    wall_ms: u64,
    tick: u32,
}

const UNARMED: State = State {
    remaining: u64::MAX,
    limit: u64::MAX,
    deadline: None,
    wall_ms: 0,
    tick: 0,
};

thread_local! {
    static STATE: Cell<State> = const { Cell::new(UNARMED) };
}

/// An armed budget; dropping it restores whatever was armed before.
pub struct BudgetScope {
    prev: State,
}

impl BudgetScope {
    /// Arms this thread with a pivot budget and/or a wall-clock deadline
    /// (`(instant, limit_ms)`, the latter only for the abort message).
    /// `None`/`None` arms an infinite scope, which still shields the
    /// caller from any stale outer scope.
    #[must_use]
    pub fn arm(max_pivots: Option<u64>, deadline: Option<(Instant, u64)>) -> BudgetScope {
        let prev = STATE.get();
        STATE.set(State {
            remaining: max_pivots.unwrap_or(u64::MAX),
            limit: max_pivots.unwrap_or(u64::MAX),
            deadline: deadline.map(|(at, _)| at),
            wall_ms: deadline.map_or(0, |(_, ms)| ms),
            tick: 0,
        });
        BudgetScope { prev }
    }
}

impl Drop for BudgetScope {
    fn drop(&mut self) {
        STATE.set(self.prev);
    }
}

/// Charges one simplex pivot against the armed budget (no-op when
/// unarmed). Aborts by unwinding with [`BudgetExceeded`] on exhaustion;
/// the wall-clock deadline is probed every 64 charges (and on the
/// first), keeping the `Instant::now` cost off the pivot hot path.
#[inline]
pub(crate) fn charge_pivot() {
    let mut s = STATE.get();
    if s.remaining == u64::MAX && s.deadline.is_none() {
        return;
    }
    if s.remaining == 0 {
        std::panic::panic_any(BudgetExceeded {
            resource: "simplex pivots",
            limit: s.limit,
        });
    }
    if s.remaining != u64::MAX {
        s.remaining -= 1;
    }
    if let Some(at) = s.deadline {
        if s.tick.is_multiple_of(64) && Instant::now() >= at {
            std::panic::panic_any(BudgetExceeded {
                resource: "cell wall-clock ms",
                limit: s.wall_ms,
            });
        }
        s.tick = s.tick.wrapping_add(1);
    }
    STATE.set(s);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_charges_are_free_and_infallible() {
        for _ in 0..10_000 {
            charge_pivot();
        }
    }

    #[test]
    fn exhaustion_unwinds_with_a_typed_payload() {
        let _scope = BudgetScope::arm(Some(2), None);
        charge_pivot();
        charge_pivot();
        let err = std::panic::catch_unwind(charge_pivot).expect_err("third charge must abort");
        let payload = err
            .downcast::<BudgetExceeded>()
            .expect("typed BudgetExceeded payload");
        assert_eq!(payload.resource, "simplex pivots");
        assert_eq!(payload.limit, 2);
    }

    #[test]
    fn a_budgeted_solve_aborts_instead_of_spinning() {
        use crate::model::{CmpOp, LinExpr, LpModel};
        // max 3x + 2y s.t. x + y ≤ 4, x + 3y ≤ 6 pivots at least once;
        // a zero-pivot budget must abort it with the typed payload.
        let mut m = LpModel::new();
        let x = m.add_var("x");
        let y = m.add_var("y");
        m.add_constraint(LinExpr::new().with_term(x, 1).with_term(y, 1), CmpOp::Le, 4);
        m.add_constraint(LinExpr::new().with_term(x, 1).with_term(y, 3), CmpOp::Le, 6);
        m.set_objective(LinExpr::new().with_term(x, 3).with_term(y, 2));
        let _scope = BudgetScope::arm(Some(0), None);
        let caught = std::panic::catch_unwind(|| crate::simplex::solve_lp(&m));
        let err = caught.expect_err("budget must abort the solve");
        assert!(err.downcast_ref::<BudgetExceeded>().is_some());
    }
}
