//! Linear/integer program model.
//!
//! All variables are non-negative (`x >= 0`), which matches IPET where
//! variables are execution counts. The objective is always *maximised* —
//! again the IPET convention (longest path).

use std::collections::BTreeMap;
use std::fmt;

use crate::rational::Rat;

/// Identifier of a model variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(usize);

impl VarId {
    /// Raw column index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A linear expression `Σ coeff·var`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LinExpr {
    terms: BTreeMap<VarId, Rat>,
}

impl LinExpr {
    /// The empty (zero) expression.
    #[must_use]
    pub fn new() -> LinExpr {
        LinExpr::default()
    }

    /// Adds `coeff·var` to the expression (accumulating).
    pub fn add_term(&mut self, var: VarId, coeff: impl Into<Rat>) -> &mut Self {
        let c = coeff.into();
        let e = self.terms.entry(var).or_insert(Rat::ZERO);
        *e += c;
        if e.is_zero() {
            self.terms.remove(&var);
        }
        self
    }

    /// Builder-style [`LinExpr::add_term`].
    #[must_use]
    pub fn with_term(mut self, var: VarId, coeff: impl Into<Rat>) -> LinExpr {
        self.add_term(var, coeff);
        self
    }

    /// The coefficient of `var` (zero if absent).
    #[must_use]
    pub fn coeff(&self, var: VarId) -> Rat {
        self.terms.get(&var).copied().unwrap_or(Rat::ZERO)
    }

    /// Iterator over `(var, coeff)` terms.
    pub fn terms(&self) -> impl Iterator<Item = (VarId, Rat)> + '_ {
        self.terms.iter().map(|(&v, &c)| (v, c))
    }

    /// Number of non-zero terms.
    #[must_use]
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True if the expression is zero.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Evaluates the expression at a point.
    ///
    /// # Panics
    ///
    /// Panics if a referenced variable index is out of range for `point`.
    #[must_use]
    pub fn eval(&self, point: &[Rat]) -> Rat {
        let mut acc = Rat::ZERO;
        for (v, c) in self.terms() {
            acc += c * point[v.index()];
        }
        acc
    }
}

impl FromIterator<(VarId, Rat)> for LinExpr {
    fn from_iter<T: IntoIterator<Item = (VarId, Rat)>>(iter: T) -> Self {
        let mut e = LinExpr::new();
        for (v, c) in iter {
            e.add_term(v, c);
        }
        e
    }
}

/// Constraint comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `expr <= rhs`.
    Le,
    /// `expr == rhs`.
    Eq,
    /// `expr >= rhs`.
    Ge,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CmpOp::Le => "<=",
            CmpOp::Eq => "==",
            CmpOp::Ge => ">=",
        })
    }
}

/// One linear constraint `expr <op> rhs`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Constraint {
    /// Left-hand side.
    pub expr: LinExpr,
    /// Comparison.
    pub op: CmpOp,
    /// Right-hand side constant.
    pub rhs: Rat,
}

/// A linear/integer program: maximise `objective` subject to constraints,
/// `x >= 0`.
#[derive(Debug, Clone, Default)]
pub struct LpModel {
    names: Vec<String>,
    integer: Vec<bool>,
    constraints: Vec<Constraint>,
    objective: LinExpr,
}

impl LpModel {
    /// Creates an empty model.
    #[must_use]
    pub fn new() -> LpModel {
        LpModel::default()
    }

    /// Adds a continuous variable (`x >= 0`).
    pub fn add_var(&mut self, name: impl Into<String>) -> VarId {
        self.names.push(name.into());
        self.integer.push(false);
        VarId(self.names.len() - 1)
    }

    /// Adds an integer variable (`x >= 0`, integral).
    pub fn add_int_var(&mut self, name: impl Into<String>) -> VarId {
        let v = self.add_var(name);
        self.integer[v.index()] = true;
        v
    }

    /// Number of variables.
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.names.len()
    }

    /// Number of constraints.
    #[must_use]
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Variable name.
    ///
    /// # Panics
    ///
    /// Panics if `var` does not belong to this model.
    #[must_use]
    pub fn var_name(&self, var: VarId) -> &str {
        &self.names[var.index()]
    }

    /// True if the variable is integral.
    ///
    /// # Panics
    ///
    /// Panics if `var` does not belong to this model.
    #[must_use]
    pub fn is_integer(&self, var: VarId) -> bool {
        self.integer[var.index()]
    }

    /// Adds `expr <op> rhs`.
    pub fn add_constraint(&mut self, expr: LinExpr, op: CmpOp, rhs: impl Into<Rat>) {
        self.constraints.push(Constraint {
            expr,
            op,
            rhs: rhs.into(),
        });
    }

    /// The constraints.
    #[must_use]
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Sets the (maximised) objective.
    pub fn set_objective(&mut self, objective: LinExpr) {
        self.objective = objective;
    }

    /// The objective expression.
    #[must_use]
    pub fn objective(&self) -> &LinExpr {
        &self.objective
    }

    /// All integer variables.
    pub fn integer_vars(&self) -> impl Iterator<Item = VarId> + '_ {
        self.integer
            .iter()
            .enumerate()
            .filter(|(_, &i)| i)
            .map(|(i, _)| VarId(i))
    }

    /// Checks whether a point satisfies every constraint (and non-negativity).
    #[must_use]
    pub fn is_feasible(&self, point: &[Rat]) -> bool {
        if point.len() != self.num_vars() {
            return false;
        }
        if point.iter().any(|&v| v < Rat::ZERO) {
            return false;
        }
        self.constraints.iter().all(|c| {
            let lhs = c.expr.eval(point);
            match c.op {
                CmpOp::Le => lhs <= c.rhs,
                CmpOp::Eq => lhs == c.rhs,
                CmpOp::Ge => lhs >= c.rhs,
            }
        })
    }
}

/// Result status of an LP/ILP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveStatus {
    /// An optimal solution was found.
    Optimal,
    /// The constraint system has no feasible point.
    Infeasible,
    /// The objective is unbounded above.
    Unbounded,
}

impl fmt::Display for SolveStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SolveStatus::Optimal => "optimal",
            SolveStatus::Infeasible => "infeasible",
            SolveStatus::Unbounded => "unbounded",
        })
    }
}

/// Solver-effort counters for one LP/ILP solve (accumulated over every
/// simplex phase and, for ILPs, every branch-and-bound node).
///
/// Statistics describe *how* the optimum was reached, not *what* it is:
/// two solves of the same model are equal ([`Solution`]'s `PartialEq`)
/// even when one was warm-started and pivoted less.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolveStats {
    /// Total simplex pivots (primal + dual, all phases).
    pub pivots: u64,
    /// Pivots spent in phase 1 (feasibility search).
    pub phase1_pivots: u64,
    /// Dual-simplex pivots (warm-started re-solves).
    pub dual_pivots: u64,
    /// Pivots taken under the Bland anti-cycling fallback.
    pub bland_pivots: u64,
    /// Solves that started from a reused basis instead of cold.
    pub warm_starts: u64,
    /// Solves that skipped phase 1 entirely thanks to a warm basis.
    pub phase1_skips: u64,
    /// Warm bases rebuilt by refactorization.
    pub refactorizations: u64,
    /// Solves attempted on the speculative f64 fast path.
    pub f64_solves: u64,
    /// Fast-path solves whose terminal basis passed exact certification
    /// (the returned optimum came from the f64 simplex, proven exact).
    pub certified: u64,
    /// Fast-path solves rejected by the exact referee (or numerically
    /// abandoned) and re-run on the exact solver.
    pub fallbacks: u64,
    /// Eta-file refactorizations performed by the f64 simplex.
    pub eta_factors: u64,
}

impl SolveStats {
    /// Adds `other`'s counters into `self`.
    pub fn absorb(&mut self, other: &SolveStats) {
        self.pivots += other.pivots;
        self.phase1_pivots += other.phase1_pivots;
        self.dual_pivots += other.dual_pivots;
        self.bland_pivots += other.bland_pivots;
        self.warm_starts += other.warm_starts;
        self.phase1_skips += other.phase1_skips;
        self.refactorizations += other.refactorizations;
        self.f64_solves += other.f64_solves;
        self.certified += other.certified;
        self.fallbacks += other.fallbacks;
        self.eta_factors += other.eta_factors;
    }
}

/// A solution (only meaningful when `status == Optimal`).
///
/// Equality compares the mathematical result (status, objective, values)
/// and deliberately ignores [`SolveStats`]: a warm-started solve that
/// found the same optimum with fewer pivots *is* the same solution.
#[derive(Debug, Clone)]
pub struct Solution {
    /// Solve status.
    pub status: SolveStatus,
    /// Objective value at the optimum.
    pub objective: Rat,
    /// Variable assignment.
    pub values: Vec<Rat>,
    /// Solver-effort counters (pivots, warm starts, phase-1 skips).
    pub stats: SolveStats,
}

impl PartialEq for Solution {
    fn eq(&self, other: &Solution) -> bool {
        self.status == other.status
            && self.objective == other.objective
            && self.values == other.values
    }
}

impl Eq for Solution {}

impl Solution {
    pub(crate) fn non_optimal(status: SolveStatus) -> Solution {
        Solution {
            status,
            objective: Rat::ZERO,
            values: Vec::new(),
            stats: SolveStats::default(),
        }
    }

    /// The value of `var` in the solution.
    ///
    /// # Panics
    ///
    /// Panics if the solution is not optimal or `var` is out of range.
    #[must_use]
    pub fn value(&self, var: VarId) -> Rat {
        assert_eq!(
            self.status,
            SolveStatus::Optimal,
            "no values in {} solution",
            self.status
        );
        self.values[var.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linexpr_accumulates_and_cancels() {
        let mut m = LpModel::new();
        let x = m.add_var("x");
        let y = m.add_var("y");
        let mut e = LinExpr::new();
        e.add_term(x, 2).add_term(y, 3).add_term(x, -2);
        assert_eq!(e.coeff(x), Rat::ZERO);
        assert_eq!(e.coeff(y), Rat::int(3));
        assert_eq!(e.len(), 1);
    }

    #[test]
    fn feasibility_check() {
        let mut m = LpModel::new();
        let x = m.add_var("x");
        let y = m.add_var("y");
        m.add_constraint(LinExpr::new().with_term(x, 1).with_term(y, 1), CmpOp::Le, 4);
        m.add_constraint(LinExpr::new().with_term(x, 1), CmpOp::Ge, 1);
        assert!(m.is_feasible(&[Rat::int(1), Rat::int(3)]));
        assert!(!m.is_feasible(&[Rat::int(0), Rat::int(3)])); // x >= 1 violated
        assert!(!m.is_feasible(&[Rat::int(2), Rat::int(3)])); // sum > 4
        assert!(!m.is_feasible(&[Rat::int(-1), Rat::int(0)])); // negativity
    }

    #[test]
    fn eval_matches_terms() {
        let mut m = LpModel::new();
        let x = m.add_var("x");
        let y = m.add_var("y");
        let e = LinExpr::new().with_term(x, 2).with_term(y, Rat::new(1, 2));
        assert_eq!(e.eval(&[Rat::int(3), Rat::int(4)]), Rat::int(8));
    }
}
