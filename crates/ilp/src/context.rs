//! Cross-solve warm-start context.
//!
//! IPET sweeps (interference counts, partition shapes, lock budgets)
//! re-solve the *same flow-constraint system* under different cost
//! objectives. [`SolveContext`] caches, per caller-chosen key, the
//! **phase-1 feasible basis** of that system; every later solve under
//! the key skips phase 1 — typically half the pivots of an
//! equality-heavy IPET model.
//!
//! Why the *feasible* basis and not the last *optimal* basis: the
//! phase-1 basis depends only on the constraint system, never on the
//! objective, so a warm-started solve takes the exact pivot path a cold
//! solve would take after its own phase 1 — results are bit-identical
//! regardless of which solve populated the cache or in what order
//! concurrent solves interleave. An optimal basis from a *different*
//! objective would also be reusable, but would make the reported
//! solution (among alternate optima) depend on solve order — poison for
//! the engine's batch-equals-sequential guarantee.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::branch_bound::{solve_ilp_warm, IlpConfig, IlpError, IlpStats};
use crate::model::{LpModel, Solution, SolveStats};
use crate::simplex::{solve_lp_warm, WarmBasis};

/// Poison-tolerant lock accessor: a supervised caller that panics
/// mid-solve (budget abort, injected fault) never holds these locks at
/// the point of unwind, so the guarded state is consistent; recover
/// instead of wedging every other worker sharing the context.
fn lock_ok<T>(m: &std::sync::Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Key identifying one constraint system (callers typically use a task
/// content fingerprint — any stable 128-bit identity works; a mismatch
/// only costs the warm start, never correctness, because basis
/// dimensions are re-validated against the model on every use).
pub type SolveKey = (u64, u64);

/// Monotonic counters of a [`SolveContext`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ContextStats {
    /// Solves that reused a cached basis (phase 1 skipped).
    pub warm_hits: u64,
    /// Solves that ran cold (first sight of the key, or a stale basis).
    pub cold_solves: u64,
}

/// A thread-safe cache of phase-1 feasible bases, keyed by constraint
/// system. See the [module docs](self).
#[derive(Debug, Default)]
pub struct SolveContext {
    bases: Mutex<HashMap<SolveKey, Arc<WarmBasis>>>,
    warm_hits: AtomicU64,
    cold_solves: AtomicU64,
    /// Per-solve effort counters summed over every solve served through
    /// this context (pivots, certified fast solves, fallbacks…) — the
    /// one place a mixed engine/static-path workload can read its whole
    /// solver bill.
    totals: Mutex<SolveStats>,
}

impl SolveContext {
    /// Creates an empty context.
    #[must_use]
    pub fn new() -> SolveContext {
        SolveContext::default()
    }

    /// Counters so far.
    #[must_use]
    pub fn stats(&self) -> ContextStats {
        ContextStats {
            warm_hits: self.warm_hits.load(Ordering::Relaxed),
            cold_solves: self.cold_solves.load(Ordering::Relaxed),
        }
    }

    /// Summed per-solve effort counters of every solve served through
    /// this context. Lock poisoning is recovered from: the critical
    /// sections here are pure reads and absorbs, so a (supervised)
    /// panicking solver thread cannot leave the totals inconsistent.
    #[must_use]
    pub fn totals(&self) -> SolveStats {
        *lock_ok(&self.totals)
    }

    fn cached(&self, key: SolveKey) -> Option<Arc<WarmBasis>> {
        lock_ok(&self.bases).get(&key).cloned()
    }

    /// Records the outcome of one solve: count the hit/miss and, on a
    /// miss that produced a basis, populate the cache. `or_insert`
    /// (never overwrite): all solves under a key share one constraint
    /// system, so any produced basis is equally valid — and if a caller
    /// mis-keys two systems together, keeping the first avoids the two
    /// thrashing each other out of the cache forever.
    fn record(
        &self,
        key: SolveKey,
        warm_used: bool,
        feasible: Option<WarmBasis>,
        stats: &SolveStats,
    ) {
        lock_ok(&self.totals).absorb(stats);
        if warm_used {
            self.warm_hits.fetch_add(1, Ordering::Relaxed);
            return;
        }
        self.cold_solves.fetch_add(1, Ordering::Relaxed);
        if let Some(basis) = feasible {
            lock_ok(&self.bases)
                .entry(key)
                .or_insert_with(|| Arc::new(basis));
        }
    }

    /// [`crate::solve_ilp`] through the warm-start cache.
    ///
    /// # Errors
    ///
    /// See [`IlpError`].
    pub fn solve_ilp(
        &self,
        key: SolveKey,
        model: &LpModel,
        config: IlpConfig,
    ) -> Result<(Solution, IlpStats), IlpError> {
        let warm = self.cached(key);
        let out = solve_ilp_warm(model, config, warm.as_deref())?;
        self.record(
            key,
            out.root_warm_used,
            out.root_feasible_basis,
            &out.solution.stats,
        );
        Ok((out.solution, out.stats))
    }

    /// [`crate::solve_lp`] through the warm-start cache.
    #[must_use]
    pub fn solve_lp(&self, key: SolveKey, model: &LpModel) -> Solution {
        let warm = self.cached(key);
        let out = solve_lp_warm(model, warm.as_deref());
        let warm_used = out.solution.stats.warm_starts > 0;
        self.record(key, warm_used, out.feasible_basis, &out.solution.stats);
        out.solution
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{CmpOp, LinExpr, SolveStatus};
    use crate::rational::Rat;

    /// An equality-heavy model whose objective is parameterized.
    fn model(obj: &[i64; 3]) -> LpModel {
        let mut m = LpModel::new();
        let x = m.add_int_var("x");
        let y = m.add_int_var("y");
        let z = m.add_var("z");
        m.add_constraint(
            LinExpr::new()
                .with_term(x, 1)
                .with_term(y, 1)
                .with_term(z, 1),
            CmpOp::Eq,
            7,
        );
        m.add_constraint(LinExpr::new().with_term(x, 2).with_term(y, 1), CmpOp::Le, 9);
        m.add_constraint(LinExpr::new().with_term(z, 1), CmpOp::Le, 3);
        let mut o = LinExpr::new();
        for (v, &c) in [x, y, z].into_iter().zip(obj) {
            o.add_term(v, c);
        }
        m.set_objective(o);
        m
    }

    #[test]
    fn repeat_solves_hit_and_match_cold() {
        let ctx = SolveContext::new();
        let key = (1, 2);
        for (i, obj) in [[3, 2, 1], [1, 5, 2], [2, 2, 9]].iter().enumerate() {
            let m = model(obj);
            let (warm, _) = ctx
                .solve_ilp(key, &m, IlpConfig::default())
                .expect("solves");
            let (cold, _) = crate::solve_ilp(&m, IlpConfig::default()).expect("solves");
            assert_eq!(warm, cold, "objective #{i} diverged");
            assert_eq!(warm.values, cold.values, "objective #{i} values diverged");
        }
        let stats = ctx.stats();
        assert_eq!(stats.cold_solves, 1);
        assert_eq!(stats.warm_hits, 2);
    }

    #[test]
    fn mismatched_key_degrades_to_cold() {
        let ctx = SolveContext::new();
        let key = (9, 9);
        let m = model(&[1, 1, 1]);
        let _ = ctx
            .solve_ilp(key, &m, IlpConfig::default())
            .expect("solves");
        // A structurally different model under the same key: dimensions
        // disagree, so the cached basis is rejected, not misused.
        let mut other = LpModel::new();
        let x = other.add_var("x");
        other.add_constraint(LinExpr::new().with_term(x, 1), CmpOp::Le, 4);
        other.set_objective(LinExpr::new().with_term(x, 1));
        let (s, _) = ctx
            .solve_ilp(key, &other, IlpConfig::default())
            .expect("solves");
        assert_eq!(s.objective, Rat::int(4));
        assert_eq!(ctx.stats().cold_solves, 2);
    }

    #[test]
    fn lp_path_shares_the_cache() {
        let ctx = SolveContext::new();
        let key = (4, 4);
        let a = ctx.solve_lp(key, &model(&[3, 2, 1]));
        assert_eq!(a.status, SolveStatus::Optimal);
        let b = ctx.solve_lp(key, &model(&[1, 4, 1]));
        assert_eq!(b.status, SolveStatus::Optimal);
        assert_eq!(b, crate::solve_lp(&model(&[1, 4, 1])));
        assert_eq!(ctx.stats().warm_hits, 1);
    }
}
