//! Exact rational arithmetic over checked `i128`.
//!
//! IPET computes a *maximum*; rounding the LP arithmetic down (as
//! floating-point can) would under-estimate a WCET, which is unsound. All
//! simplex pivots therefore run over exact rationals. Overflow is detected
//! and panics with a clear message rather than silently wrapping — for the
//! IPET instances this toolkit generates (coefficients are block costs and
//! loop bounds) overflow would indicate a bug, not a legitimate input.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// An exact rational number `num/den` with `den > 0`, always reduced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rat {
    num: i128,
    den: i128,
}

const fn gcd(mut a: i128, mut b: i128) -> i128 {
    // Plain Euclid on absolute values.
    if a < 0 {
        a = -a;
    }
    if b < 0 {
        b = -b;
    }
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Rat {
    /// Zero.
    pub const ZERO: Rat = Rat { num: 0, den: 1 };
    /// One.
    pub const ONE: Rat = Rat { num: 1, den: 1 };

    /// Creates `num/den`, reduced.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    #[must_use]
    pub fn new(num: i128, den: i128) -> Rat {
        assert!(den != 0, "rational with zero denominator");
        let g = gcd(num, den).max(1);
        let sign = if den < 0 { -1 } else { 1 };
        Rat {
            num: sign * (num / g),
            den: (den / g).abs(),
        }
    }

    /// Creates the integer `n`.
    #[must_use]
    pub fn int(n: i128) -> Rat {
        Rat { num: n, den: 1 }
    }

    /// Numerator (after reduction; sign lives here).
    #[must_use]
    pub fn numer(self) -> i128 {
        self.num
    }

    /// Denominator (always positive).
    #[must_use]
    pub fn denom(self) -> i128 {
        self.den
    }

    /// True if the value is an integer.
    #[must_use]
    pub fn is_integer(self) -> bool {
        self.den == 1
    }

    /// True if the value is zero.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.num == 0
    }

    /// Sign: -1, 0, or 1.
    #[must_use]
    pub fn signum(self) -> i128 {
        self.num.signum()
    }

    /// Largest integer `<= self`.
    #[must_use]
    pub fn floor(self) -> i128 {
        self.num.div_euclid(self.den)
    }

    /// Smallest integer `>= self`.
    #[must_use]
    pub fn ceil(self) -> i128 {
        -(-self.num).div_euclid(self.den)
    }

    /// Converts to `f64` (rounded, not exact). The speculative tier of
    /// the LP kernel pivots on these conversions, which is safe only
    /// because its every outcome is re-proven in exact arithmetic — see
    /// the certify-or-fallback argument in `crate::simplex`. Results are
    /// never derived from the converted values directly.
    #[must_use]
    pub fn to_f64(self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Exact integer value.
    ///
    /// Returns `None` if the value is not an integer.
    #[must_use]
    pub fn to_integer(self) -> Option<i128> {
        self.is_integer().then_some(self.num)
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if `self` is zero.
    #[must_use]
    pub fn recip(self) -> Rat {
        assert!(self.num != 0, "reciprocal of zero");
        Rat::new(self.den, self.num)
    }

    /// Absolute value.
    ///
    /// # Panics
    ///
    /// Panics if the numerator is `i128::MIN` (its magnitude is
    /// unrepresentable) — checked even in release builds, where the raw
    /// `abs` would silently wrap.
    #[must_use]
    pub fn abs(self) -> Rat {
        Rat {
            num: self.num.checked_abs().unwrap_or_else(|| {
                panic!("Rat absolute value overflowed i128: |{self}|");
            }),
            den: self.den,
        }
    }

    /// `a * b` over raw `i128` parts, panicking with a message that
    /// names the offending operation and both operands (used by the
    /// comparison path, which never forms a full `Rat`).
    fn mul_i128(a: i128, b: i128, op: &'static str) -> i128 {
        a.checked_mul(b).unwrap_or_else(|| {
            panic!("Rat {op} overflowed i128: {a} * {b}");
        })
    }

    /// The single addition core (Knuth 4.5.1): reduce by gcd of the
    /// denominators *before* multiplying, then reduce the numerator sum
    /// against that gcd so the final products stay as small as
    /// possible. `Err` names the part that overflowed — the checked
    /// entry points discard it, the panicking ones put it in the
    /// message.
    fn add_exact(self, rhs: Rat) -> Result<Rat, &'static str> {
        let g = gcd(self.den, rhs.den).max(1);
        let num = self
            .num
            .checked_mul(rhs.den / g)
            .and_then(|l| l.checked_add(rhs.num.checked_mul(self.den / g)?))
            .ok_or("numerator")?;
        let g2 = gcd(num, g).max(1);
        let den = (self.den / g)
            .checked_mul(rhs.den / g2)
            .ok_or("denominator")?;
        Ok(Rat::new(num / g2, den))
    }

    /// The single multiplication core: cross-reduce before multiplying.
    fn mul_exact(self, rhs: Rat) -> Result<Rat, &'static str> {
        let g1 = gcd(self.num, rhs.den).max(1);
        let g2 = gcd(rhs.num, self.den).max(1);
        let num = (self.num / g1)
            .checked_mul(rhs.num / g2)
            .ok_or("numerator")?;
        let den = (self.den / g2)
            .checked_mul(rhs.den / g1)
            .ok_or("denominator")?;
        Ok(Rat::new(num, den))
    }

    /// Overflow-checked addition: `None` instead of a panic.
    #[must_use]
    pub fn checked_add(self, rhs: Rat) -> Option<Rat> {
        self.add_exact(rhs).ok()
    }

    /// Overflow-checked subtraction: `None` instead of a panic.
    ///
    /// Conservatively `None` when `rhs`'s numerator is `i128::MIN`
    /// (its negation is unrepresentable, so the subtraction cannot be
    /// routed through the addition core without overflowing first).
    #[must_use]
    pub fn checked_sub(self, rhs: Rat) -> Option<Rat> {
        if rhs.num == i128::MIN {
            return None;
        }
        self.add_exact(-rhs).ok()
    }

    /// Overflow-checked multiplication: `None` instead of a panic.
    #[must_use]
    pub fn checked_mul(self, rhs: Rat) -> Option<Rat> {
        self.mul_exact(rhs).ok()
    }
}

impl Default for Rat {
    fn default() -> Self {
        Rat::ZERO
    }
}

impl fmt::Display for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl From<i64> for Rat {
    fn from(n: i64) -> Self {
        Rat::int(i128::from(n))
    }
}

impl From<u64> for Rat {
    fn from(n: u64) -> Self {
        Rat::int(i128::from(n))
    }
}

impl From<i32> for Rat {
    fn from(n: i32) -> Self {
        Rat::int(i128::from(n))
    }
}

impl Rat {
    /// `self + rhs` with `op` naming the user-visible operation in any
    /// overflow panic ("addition" or "subtraction").
    fn add_impl(self, rhs: Rat, op: &'static str) -> Rat {
        self.add_exact(rhs).unwrap_or_else(|part| {
            panic!("Rat {op} overflowed i128 in the {part}: {self}, {rhs}");
        })
    }
}

impl Add for Rat {
    type Output = Rat;
    fn add(self, rhs: Rat) -> Rat {
        self.add_impl(rhs, "addition")
    }
}

impl AddAssign for Rat {
    fn add_assign(&mut self, rhs: Rat) {
        *self = *self + rhs;
    }
}

impl Sub for Rat {
    type Output = Rat;
    fn sub(self, rhs: Rat) -> Rat {
        self.add_impl(-rhs, "subtraction")
    }
}

impl SubAssign for Rat {
    fn sub_assign(&mut self, rhs: Rat) {
        *self = *self - rhs;
    }
}

impl Neg for Rat {
    type Output = Rat;
    /// # Panics
    ///
    /// Panics if the numerator is `i128::MIN` — checked even in release
    /// builds, where the raw negation would silently wrap back to
    /// `i128::MIN` (a sign error, the one thing an exact solver must
    /// never produce).
    fn neg(self) -> Rat {
        Rat {
            num: self.num.checked_neg().unwrap_or_else(|| {
                panic!("Rat negation overflowed i128: -({self})");
            }),
            den: self.den,
        }
    }
}

impl Mul for Rat {
    type Output = Rat;
    fn mul(self, rhs: Rat) -> Rat {
        self.mul_exact(rhs).unwrap_or_else(|part| {
            panic!("Rat multiplication overflowed i128 in the {part}: {self} * {rhs}");
        })
    }
}

impl Div for Rat {
    type Output = Rat;
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    #[allow(clippy::suspicious_arithmetic_impl)] // division via reciprocal
    fn div(self, rhs: Rat) -> Rat {
        self * rhs.recip()
    }
}

impl PartialOrd for Rat {
    fn partial_cmp(&self, other: &Rat) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rat {
    fn cmp(&self, other: &Rat) -> Ordering {
        // Cross-multiply after reducing by gcd(dens) — no subtraction, no
        // re-normalization. This is the hot operation of every simplex
        // ratio test, and the reduced products cannot overflow unless the
        // operands themselves are near the i128 edge.
        let g = gcd(self.den, other.den).max(1);
        let lhs = Rat::mul_i128(self.num, other.den / g, "comparison (lhs)");
        let rhs = Rat::mul_i128(other.num, self.den / g, "comparison (rhs)");
        lhs.cmp(&rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_reduces() {
        assert_eq!(Rat::new(2, 4), Rat::new(1, 2));
        assert_eq!(Rat::new(-2, -4), Rat::new(1, 2));
        assert_eq!(Rat::new(2, -4), Rat::new(-1, 2));
        assert_eq!(Rat::new(0, -7), Rat::ZERO);
    }

    #[test]
    fn arithmetic() {
        let half = Rat::new(1, 2);
        let third = Rat::new(1, 3);
        assert_eq!(half + third, Rat::new(5, 6));
        assert_eq!(half - third, Rat::new(1, 6));
        assert_eq!(half * third, Rat::new(1, 6));
        assert_eq!(half / third, Rat::new(3, 2));
        assert_eq!(-half, Rat::new(-1, 2));
    }

    #[test]
    fn ordering() {
        assert!(Rat::new(1, 3) < Rat::new(1, 2));
        assert!(Rat::new(-1, 2) < Rat::ZERO);
        assert!(Rat::int(3) > Rat::new(5, 2));
        let mut v = vec![Rat::int(2), Rat::new(1, 2), Rat::new(-3, 4)];
        v.sort();
        assert_eq!(v, vec![Rat::new(-3, 4), Rat::new(1, 2), Rat::int(2)]);
    }

    #[test]
    fn floor_ceil() {
        assert_eq!(Rat::new(7, 2).floor(), 3);
        assert_eq!(Rat::new(7, 2).ceil(), 4);
        assert_eq!(Rat::new(-7, 2).floor(), -4);
        assert_eq!(Rat::new(-7, 2).ceil(), -3);
        assert_eq!(Rat::int(5).floor(), 5);
        assert_eq!(Rat::int(5).ceil(), 5);
    }

    #[test]
    fn integer_checks() {
        assert!(Rat::int(4).is_integer());
        assert!(!Rat::new(4, 3).is_integer());
        assert_eq!(Rat::int(4).to_integer(), Some(4));
        assert_eq!(Rat::new(4, 3).to_integer(), None);
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = Rat::new(1, 0);
    }

    #[test]
    #[should_panic(expected = "reciprocal of zero")]
    fn recip_zero_panics() {
        let _ = Rat::ZERO.recip();
    }

    #[test]
    fn display() {
        assert_eq!(Rat::new(3, 1).to_string(), "3");
        assert_eq!(Rat::new(-3, 7).to_string(), "-3/7");
    }

    #[test]
    fn checked_paths_report_overflow_as_none() {
        let huge = Rat::int(i128::MAX);
        assert_eq!(huge.checked_add(Rat::ONE), None);
        assert_eq!(huge.checked_mul(Rat::int(2)), None);
        assert_eq!(Rat::int(i128::MIN + 1).checked_sub(Rat::int(2)), None);
        // Non-overflowing inputs round-trip through the checked paths.
        assert_eq!(
            Rat::new(1, 2).checked_add(Rat::new(1, 3)),
            Some(Rat::new(5, 6))
        );
        assert_eq!(
            Rat::new(2, 3).checked_mul(Rat::new(3, 4)),
            Some(Rat::new(1, 2))
        );
    }

    #[test]
    #[should_panic(expected = "Rat multiplication overflowed i128 in the numerator")]
    fn overflow_panic_names_the_operation() {
        let huge = Rat::int(i128::MAX);
        let _ = huge * huge;
    }

    #[test]
    #[should_panic(expected = "Rat negation overflowed i128")]
    fn neg_of_minimum_panics_instead_of_wrapping() {
        let _ = -Rat::int(i128::MIN);
    }

    #[test]
    fn checked_sub_handles_unnegatable_minimum() {
        // -i128::MIN is unrepresentable: the checked path must return
        // None (not panic in the internal negation).
        assert_eq!(Rat::ZERO.checked_sub(Rat::int(i128::MIN)), None);
        assert_eq!(Rat::int(i128::MIN).checked_sub(Rat::int(i128::MIN)), None);
    }

    #[test]
    fn comparison_survives_extreme_magnitudes() {
        // Subtraction-based cmp would overflow computing MAX - MIN; the
        // cross-multiplied compare never forms the difference.
        let lo = Rat::int(i128::MIN + 1);
        let hi = Rat::int(i128::MAX);
        assert!(lo < hi);
        assert!(hi > lo);
        assert_eq!(hi.cmp(&hi), Ordering::Equal);
    }

    #[test]
    fn cross_reduction_avoids_overflow() {
        // (2^100/3) * (3/2^100) = 1 — would overflow without cross-reduction.
        let big = Rat::new(1 << 100, 3);
        let small = Rat::new(3, 1 << 100);
        assert_eq!(big * small, Rat::ONE);
    }
}
