//! Exact rational arithmetic over checked `i128`.
//!
//! IPET computes a *maximum*; rounding the LP arithmetic down (as
//! floating-point can) would under-estimate a WCET, which is unsound. All
//! simplex pivots therefore run over exact rationals. Overflow is detected
//! and panics with a clear message rather than silently wrapping — for the
//! IPET instances this toolkit generates (coefficients are block costs and
//! loop bounds) overflow would indicate a bug, not a legitimate input.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// An exact rational number `num/den` with `den > 0`, always reduced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rat {
    num: i128,
    den: i128,
}

const fn gcd(mut a: i128, mut b: i128) -> i128 {
    // Plain Euclid on absolute values.
    if a < 0 {
        a = -a;
    }
    if b < 0 {
        b = -b;
    }
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Rat {
    /// Zero.
    pub const ZERO: Rat = Rat { num: 0, den: 1 };
    /// One.
    pub const ONE: Rat = Rat { num: 1, den: 1 };

    /// Creates `num/den`, reduced.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    #[must_use]
    pub fn new(num: i128, den: i128) -> Rat {
        assert!(den != 0, "rational with zero denominator");
        let g = gcd(num, den).max(1);
        let sign = if den < 0 { -1 } else { 1 };
        Rat {
            num: sign * (num / g),
            den: (den / g).abs(),
        }
    }

    /// Creates the integer `n`.
    #[must_use]
    pub fn int(n: i128) -> Rat {
        Rat { num: n, den: 1 }
    }

    /// Numerator (after reduction; sign lives here).
    #[must_use]
    pub fn numer(self) -> i128 {
        self.num
    }

    /// Denominator (always positive).
    #[must_use]
    pub fn denom(self) -> i128 {
        self.den
    }

    /// True if the value is an integer.
    #[must_use]
    pub fn is_integer(self) -> bool {
        self.den == 1
    }

    /// True if the value is zero.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.num == 0
    }

    /// Sign: -1, 0, or 1.
    #[must_use]
    pub fn signum(self) -> i128 {
        self.num.signum()
    }

    /// Largest integer `<= self`.
    #[must_use]
    pub fn floor(self) -> i128 {
        self.num.div_euclid(self.den)
    }

    /// Smallest integer `>= self`.
    #[must_use]
    pub fn ceil(self) -> i128 {
        -(-self.num).div_euclid(self.den)
    }

    /// Converts to `f64` (for reporting only; never used in pivoting).
    #[must_use]
    pub fn to_f64(self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Exact integer value.
    ///
    /// Returns `None` if the value is not an integer.
    #[must_use]
    pub fn to_integer(self) -> Option<i128> {
        self.is_integer().then_some(self.num)
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if `self` is zero.
    #[must_use]
    pub fn recip(self) -> Rat {
        assert!(self.num != 0, "reciprocal of zero");
        Rat::new(self.den, self.num)
    }

    /// Absolute value.
    #[must_use]
    pub fn abs(self) -> Rat {
        Rat {
            num: self.num.abs(),
            den: self.den,
        }
    }

    fn checked_mul_i128(a: i128, b: i128) -> i128 {
        a.checked_mul(b)
            .expect("rational arithmetic overflowed i128")
    }
}

impl Default for Rat {
    fn default() -> Self {
        Rat::ZERO
    }
}

impl fmt::Display for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl From<i64> for Rat {
    fn from(n: i64) -> Self {
        Rat::int(i128::from(n))
    }
}

impl From<u64> for Rat {
    fn from(n: u64) -> Self {
        Rat::int(i128::from(n))
    }
}

impl From<i32> for Rat {
    fn from(n: i32) -> Self {
        Rat::int(i128::from(n))
    }
}

impl Add for Rat {
    type Output = Rat;
    fn add(self, rhs: Rat) -> Rat {
        // Cross-reduce to keep magnitudes small: a/b + c/d with g = gcd(b,d).
        let g = gcd(self.den, rhs.den).max(1);
        let lhs_scale = rhs.den / g;
        let rhs_scale = self.den / g;
        let num = Rat::checked_mul_i128(self.num, lhs_scale)
            .checked_add(Rat::checked_mul_i128(rhs.num, rhs_scale))
            .expect("rational addition overflowed i128");
        let den = Rat::checked_mul_i128(self.den, lhs_scale);
        Rat::new(num, den)
    }
}

impl AddAssign for Rat {
    fn add_assign(&mut self, rhs: Rat) {
        *self = *self + rhs;
    }
}

impl Sub for Rat {
    type Output = Rat;
    fn sub(self, rhs: Rat) -> Rat {
        self + (-rhs)
    }
}

impl SubAssign for Rat {
    fn sub_assign(&mut self, rhs: Rat) {
        *self = *self - rhs;
    }
}

impl Neg for Rat {
    type Output = Rat;
    fn neg(self) -> Rat {
        Rat {
            num: -self.num,
            den: self.den,
        }
    }
}

impl Mul for Rat {
    type Output = Rat;
    fn mul(self, rhs: Rat) -> Rat {
        // Cross-reduce before multiplying.
        let g1 = gcd(self.num, rhs.den).max(1);
        let g2 = gcd(rhs.num, self.den).max(1);
        let num = Rat::checked_mul_i128(self.num / g1, rhs.num / g2);
        let den = Rat::checked_mul_i128(self.den / g2, rhs.den / g1);
        Rat::new(num, den)
    }
}

impl Div for Rat {
    type Output = Rat;
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    #[allow(clippy::suspicious_arithmetic_impl)] // division via reciprocal
    fn div(self, rhs: Rat) -> Rat {
        self * rhs.recip()
    }
}

impl PartialOrd for Rat {
    fn partial_cmp(&self, other: &Rat) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rat {
    fn cmp(&self, other: &Rat) -> Ordering {
        (*self - *other).num.cmp(&0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_reduces() {
        assert_eq!(Rat::new(2, 4), Rat::new(1, 2));
        assert_eq!(Rat::new(-2, -4), Rat::new(1, 2));
        assert_eq!(Rat::new(2, -4), Rat::new(-1, 2));
        assert_eq!(Rat::new(0, -7), Rat::ZERO);
    }

    #[test]
    fn arithmetic() {
        let half = Rat::new(1, 2);
        let third = Rat::new(1, 3);
        assert_eq!(half + third, Rat::new(5, 6));
        assert_eq!(half - third, Rat::new(1, 6));
        assert_eq!(half * third, Rat::new(1, 6));
        assert_eq!(half / third, Rat::new(3, 2));
        assert_eq!(-half, Rat::new(-1, 2));
    }

    #[test]
    fn ordering() {
        assert!(Rat::new(1, 3) < Rat::new(1, 2));
        assert!(Rat::new(-1, 2) < Rat::ZERO);
        assert!(Rat::int(3) > Rat::new(5, 2));
        let mut v = vec![Rat::int(2), Rat::new(1, 2), Rat::new(-3, 4)];
        v.sort();
        assert_eq!(v, vec![Rat::new(-3, 4), Rat::new(1, 2), Rat::int(2)]);
    }

    #[test]
    fn floor_ceil() {
        assert_eq!(Rat::new(7, 2).floor(), 3);
        assert_eq!(Rat::new(7, 2).ceil(), 4);
        assert_eq!(Rat::new(-7, 2).floor(), -4);
        assert_eq!(Rat::new(-7, 2).ceil(), -3);
        assert_eq!(Rat::int(5).floor(), 5);
        assert_eq!(Rat::int(5).ceil(), 5);
    }

    #[test]
    fn integer_checks() {
        assert!(Rat::int(4).is_integer());
        assert!(!Rat::new(4, 3).is_integer());
        assert_eq!(Rat::int(4).to_integer(), Some(4));
        assert_eq!(Rat::new(4, 3).to_integer(), None);
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = Rat::new(1, 0);
    }

    #[test]
    #[should_panic(expected = "reciprocal of zero")]
    fn recip_zero_panics() {
        let _ = Rat::ZERO.recip();
    }

    #[test]
    fn display() {
        assert_eq!(Rat::new(3, 1).to_string(), "3");
        assert_eq!(Rat::new(-3, 7).to_string(), "-3/7");
    }

    #[test]
    fn cross_reduction_avoids_overflow() {
        // (2^100/3) * (3/2^100) = 1 — would overflow without cross-reduction.
        let big = Rat::new(1 << 100, 3);
        let small = Rat::new(3, 1 << 100);
        assert_eq!(big * small, Rat::ONE);
    }
}
