//! Sparse revised simplex over exact rationals, with warm starts.
//!
//! The IPET hot path re-solves near-identical models dozens of times
//! (interference sweeps change only the objective; branch-and-bound
//! children add a single bound row), so this solver is built around
//! **basis reuse**:
//!
//! * Constraint columns are stored sparsely (`Vec<(row, Rat)>`); the
//!   working state is the basis, an explicit `B⁻¹` maintained by
//!   product-form pivots, and the basic solution `x_B = B⁻¹b`.
//! * Pricing is Dantzig (most-positive reduced cost) with a **Bland
//!   fallback** that engages after `BLAND_STREAK` consecutive
//!   degenerate pivots and disengages only on a strict objective
//!   improvement. Termination: an infinite pivot sequence would have an
//!   infinite all-degenerate tail, in which the fallback engages
//!   permanently, and Bland's rule admits no cycle — contradiction.
//! * A solve can be **warm-started** from a [`WarmBasis`]: the basis is
//!   refactorized (sparse Gaussian elimination rebuilding `B⁻¹`) and, if
//!   it is still primal feasible, phase 1 is skipped entirely. Because
//!   the cached basis is the *phase-1* basis (objective-independent),
//!   a warm-started solve takes the exact same phase-2 pivot path as a
//!   cold solve of the same model — results are bit-identical by
//!   construction, not just equal in objective.
//! * [`crate::branch_bound`] appends bound rows to a solved instance and
//!   re-optimizes with **dual simplex** from the parent's optimal basis
//!   (which stays dual feasible under a bordered basis extension).
//!
//! Exactness is untouched: every pivot runs over [`Rat`]. The
//! pre-refactor dense solver survives in [`crate::dense`] as the
//! differential-test oracle (`tests/simplex_equivalence.rs`).

use crate::model::{CmpOp, LpModel, Solution, SolveStats, SolveStatus};
use crate::rational::Rat;

/// Degenerate-pivot streak after which pricing falls back to Bland's
/// rule (and stays there until a strict objective improvement).
const BLAND_STREAK: u32 = 12;

/// Solves the LP relaxation of `model` (integrality markers are ignored).
///
/// The returned [`Solution`] carries exact rational variable values; its
/// `status` distinguishes optimal / infeasible / unbounded.
#[must_use]
pub fn solve_lp(model: &LpModel) -> Solution {
    solve_lp_warm(model, None).solution
}

/// [`solve_lp`] restricted to the exact tier: no f64 speculation, every
/// pivot over [`Rat`]. This is the differential-test oracle for the
/// certified fast path (and what [`solve_lp_warm`] falls back to).
#[must_use]
pub fn solve_lp_exact(model: &LpModel) -> Solution {
    solve_lp_exact_warm(model, None).solution
}

/// A reusable simplex basis: the basic column of every constraint row,
/// plus the dimensions it was taken from (reuse is refused on mismatch).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WarmBasis {
    pub(crate) cols: Vec<usize>,
    pub(crate) num_rows: usize,
    pub(crate) num_cols: usize,
}

/// The full outcome of an LP solve: the solution plus the bases a caller
/// can reuse to warm-start related solves.
#[derive(Debug, Clone)]
pub struct LpSolve {
    /// The solution (status, objective, values, stats).
    pub solution: Solution,
    /// The feasible basis captured right after phase 1 — objective
    /// independent, so reusing it on the *same* constraint system with a
    /// *different* objective reproduces a cold solve minus phase 1.
    /// `None` when the model is infeasible.
    pub feasible_basis: Option<WarmBasis>,
    /// The optimal basis (for dual-simplex re-solves after adding
    /// rows). `None` unless the status is optimal.
    pub optimal_basis: Option<WarmBasis>,
}

/// Solves `model`, optionally warm-starting from a basis of an identical
/// constraint system (typically [`LpSolve::feasible_basis`] of an earlier
/// solve). An incompatible or stale basis silently degrades to a cold
/// solve — warm starting is an optimization, never a correctness input.
///
/// This is the **two-tier** entry point: a speculative f64 revised
/// simplex (the private `fast` module) runs first and its terminal
/// basis is certified by one exact pass (the private `certify` module);
/// on certification failure or numerical trouble the solve falls back
/// to [`solve_lp_exact_warm`] from a cold start. Either way the
/// returned optimum is exact.
#[must_use]
pub fn solve_lp_warm(model: &LpModel, warm: Option<&WarmBasis>) -> LpSolve {
    let attempt = match crate::fast::solve_certified(model, warm) {
        Ok(certified) => return certified,
        Err(attempt_stats) => attempt_stats,
    };
    // Fallback: the exact solver, deliberately *cold*. A cached basis may
    // have been produced by the f64 phase 1, whose terminal basis can
    // differ from the exact phase 1's — warm-starting the exact path from
    // it could reach a different (equally optimal) vertex than a cold
    // exact solve, breaking the warm == cold bit-identity guarantee.
    let mut fell_back = solve_lp_exact_warm(model, None);
    fell_back.solution.stats.absorb(&attempt);
    // Same argument, other direction: never hand the exact tier's
    // phase-1 basis to the warm-start caches. A later warm f64 solve
    // adopting a basis of exact provenance would pivot from a start a
    // cold f64 solve never produces — the certified vertex could then
    // differ between warm and cold among alternate optima. Withholding
    // the basis keeps every cached basis f64-phase-1-deterministic, so
    // fallback-prone systems simply stay cold (correct, just slower).
    fell_back.feasible_basis = None;
    fell_back
}

/// The exact sparse revised simplex — the pre-fast-path solver, kept as
/// the referee's fallback and as the oracle for differential tests.
/// Semantics are identical to [`solve_lp_warm`] minus the f64 tier.
#[must_use]
pub fn solve_lp_exact_warm(model: &LpModel, warm: Option<&WarmBasis>) -> LpSolve {
    let mut t = Revised::build(model);
    let mut warm_ok = false;
    if let Some(wb) = warm {
        if t.try_warm_start(wb) {
            warm_ok = true;
        }
    }
    if !warm_ok && !t.phase1() {
        return LpSolve {
            solution: t.finish(SolveStatus::Infeasible, model),
            feasible_basis: None,
            optimal_basis: None,
        };
    }
    let feasible_basis = Some(t.warm_basis());
    let c2 = t.phase2_costs(model);
    if !t.primal(&c2, false) {
        return LpSolve {
            solution: t.finish(SolveStatus::Unbounded, model),
            feasible_basis,
            optimal_basis: None,
        };
    }
    let optimal_basis = Some(t.warm_basis());
    LpSolve {
        solution: t.finish(SolveStatus::Optimal, model),
        feasible_basis,
        optimal_basis,
    }
}

/// The revised-simplex working instance: sparse structure + basis state.
/// The standard-form fields (`cols`, `rhs`, `artificial`, `n_struct`,
/// `init_basis`) double as the shared description the speculative f64
/// solver ([`crate::fast`]) and the exact referee ([`crate::certify`])
/// both read.
pub(crate) struct Revised {
    /// Sparse columns: `cols[j]` lists `(row, coefficient)`.
    pub(crate) cols: Vec<Vec<(usize, Rat)>>,
    /// Right-hand sides. Model rows are normalized to `rhs >= 0`; rows
    /// appended by [`Revised::append_bound_row`] may be negative (they
    /// are repaired by dual simplex).
    pub(crate) rhs: Vec<Rat>,
    /// Per-column artificial marker.
    pub(crate) artificial: Vec<bool>,
    /// Number of structural (model) variables, columns `0..n_struct`.
    pub(crate) n_struct: usize,
    /// The cold-start basic column of each row (slack or artificial).
    pub(crate) init_basis: Vec<usize>,
    /// Basic column of each row.
    basis: Vec<usize>,
    /// Per-column: currently basic?
    in_basis: Vec<bool>,
    /// Explicit basis inverse, row-major.
    binv: Vec<Vec<Rat>>,
    /// Basic solution `B⁻¹ b`.
    xb: Vec<Rat>,
    /// Effort counters for this instance.
    pub(crate) stats: SolveStats,
}

impl Revised {
    /// Builds the sparse standard form of `model` in the cold-start
    /// state. Row/column layout matches the dense oracle: rows keep
    /// model order with `rhs` normalized non-negative, columns are
    /// `[structural | per-row slack/surplus/artificial]`.
    pub(crate) fn build(model: &LpModel) -> Revised {
        let n = model.num_vars();
        let m = model.num_constraints();
        let mut cols: Vec<Vec<(usize, Rat)>> = vec![Vec::new(); n];
        let mut rhs: Vec<Rat> = Vec::with_capacity(m);
        let mut ops: Vec<CmpOp> = Vec::with_capacity(m);
        for (i, c) in model.constraints().iter().enumerate() {
            let flip = c.rhs < Rat::ZERO;
            let op = match (c.op, flip) {
                (CmpOp::Le, true) => CmpOp::Ge,
                (CmpOp::Ge, true) => CmpOp::Le,
                (op, _) => op,
            };
            for (v, coeff) in c.expr.terms() {
                cols[v.index()].push((i, if flip { -coeff } else { coeff }));
            }
            rhs.push(if flip { -c.rhs } else { c.rhs });
            ops.push(op);
        }

        let mut artificial = vec![false; n];
        let mut init_basis = Vec::with_capacity(m);
        for (i, op) in ops.iter().enumerate() {
            match op {
                CmpOp::Le => {
                    cols.push(vec![(i, Rat::ONE)]); // slack
                    artificial.push(false);
                    init_basis.push(cols.len() - 1);
                }
                CmpOp::Ge => {
                    cols.push(vec![(i, -Rat::ONE)]); // surplus
                    artificial.push(false);
                    cols.push(vec![(i, Rat::ONE)]); // artificial
                    artificial.push(true);
                    init_basis.push(cols.len() - 1);
                }
                CmpOp::Eq => {
                    cols.push(vec![(i, Rat::ONE)]); // artificial
                    artificial.push(true);
                    init_basis.push(cols.len() - 1);
                }
            }
        }

        let mut t = Revised {
            cols,
            rhs,
            artificial,
            n_struct: n,
            init_basis,
            basis: Vec::new(),
            in_basis: Vec::new(),
            binv: Vec::new(),
            xb: Vec::new(),
            stats: SolveStats::default(),
        };
        t.reset_cold();
        t
    }

    fn num_rows(&self) -> usize {
        self.rhs.len()
    }

    fn num_cols(&self) -> usize {
        self.cols.len()
    }

    fn has_artificials(&self) -> bool {
        self.artificial.iter().any(|&a| a)
    }

    /// Restores the cold-start state: unit basis, `B⁻¹ = I`, `x_B = b`.
    fn reset_cold(&mut self) {
        let m = self.num_rows();
        self.basis = self.init_basis.clone();
        self.in_basis = vec![false; self.num_cols()];
        for &b in &self.basis {
            self.in_basis[b] = true;
        }
        self.binv = identity(m);
        self.xb = self.rhs.clone();
    }

    /// Appends the bound row `x_var <= bound` (or `x_var >= bound`,
    /// encoded as `-x_var <= -bound` so the slack stays basic and dual
    /// simplex repairs the negative right-hand side). Returns the new
    /// slack column. Invalidates the basis state — callers must
    /// re-initialize via [`Revised::try_warm_start`].
    pub(crate) fn append_bound_row(&mut self, var: usize, upper: bool, bound: Rat) -> usize {
        let row = self.num_rows();
        let (coeff, rhs) = if upper {
            (Rat::ONE, bound)
        } else {
            (-Rat::ONE, -bound)
        };
        self.cols[var].push((row, coeff));
        self.rhs.push(rhs);
        self.cols.push(vec![(row, Rat::ONE)]); // slack
        self.artificial.push(false);
        self.init_basis.push(self.cols.len() - 1);
        self.cols.len() - 1
    }

    /// The current basis as a reusable [`WarmBasis`].
    pub(crate) fn warm_basis(&self) -> WarmBasis {
        WarmBasis {
            cols: self.basis.clone(),
            num_rows: self.num_rows(),
            num_cols: self.num_cols(),
        }
    }

    /// Attempts to adopt `wb`: dimension check, refactorization, and a
    /// primal-feasibility check (`x_B >= 0`, required to skip phase 1).
    /// On failure the instance is back in the cold-start state.
    pub(crate) fn try_warm_start(&mut self, wb: &WarmBasis) -> bool {
        if wb.num_rows != self.num_rows() || wb.num_cols != self.num_cols() {
            return false;
        }
        if !self.factorize(&wb.cols) || self.xb.iter().any(|x| *x < Rat::ZERO) {
            self.reset_cold();
            return false;
        }
        if self.basic_artificial_nonzero() {
            // A basic artificial above zero means the basis does NOT
            // represent a feasible point of *this* model (a stale basis
            // from a different system of the same shape could smuggle an
            // infeasible model past phase 1) — run phase 1 instead.
            self.reset_cold();
            return false;
        }
        self.stats.warm_starts += 1;
        if self.has_artificials() {
            self.stats.phase1_skips += 1;
        }
        true
    }

    /// Adopts a basis that is dual feasible but possibly primal
    /// infeasible (branch-and-bound children). No `x_B` sign check, but
    /// basic artificials must still sit exactly at zero — anything else
    /// is a stale basis, and dual simplex would never repair it (it only
    /// fixes *negative* entries, and artificials never leave).
    pub(crate) fn try_warm_start_dual(&mut self, basis_cols: &[usize]) -> bool {
        if basis_cols.len() != self.num_rows()
            || !self.factorize(basis_cols)
            || self.basic_artificial_nonzero()
        {
            self.reset_cold();
            return false;
        }
        self.stats.warm_starts += 1;
        if self.has_artificials() {
            self.stats.phase1_skips += 1;
        }
        true
    }

    /// True if any basic artificial variable sits away from zero — the
    /// state no valid warm basis for this model can produce.
    fn basic_artificial_nonzero(&self) -> bool {
        self.basis
            .iter()
            .zip(&self.xb)
            .any(|(&b, x)| self.artificial[b] && !x.is_zero())
    }

    /// Rebuilds `B⁻¹`, the row↔column assignment and `x_B` from a basis
    /// column set, by Gaussian elimination in the given column order with
    /// free row pivoting (always succeeds iff the columns are
    /// independent). `false` leaves the state dirty — callers reset.
    fn factorize(&mut self, basis_cols: &[usize]) -> bool {
        let m = self.num_rows();
        debug_assert_eq!(basis_cols.len(), m);
        if basis_cols.iter().any(|&c| c >= self.num_cols()) {
            return false;
        }
        self.stats.refactorizations += 1;
        self.binv = identity(m);
        self.xb.clear(); // recomputed below; empty disables eta updates on it
        let mut assigned = vec![false; m];
        let mut basis = vec![usize::MAX; m];
        for &col in basis_cols {
            let w = self.direction(col);
            // Deterministic free pivot: smallest unassigned row with a
            // nonzero transformed entry.
            let Some(row) = (0..m).find(|&i| !assigned[i] && !w[i].is_zero()) else {
                return false; // dependent column set
            };
            assigned[row] = true;
            basis[row] = col;
            self.eta_update(row, &w);
        }
        self.basis = basis;
        self.in_basis = vec![false; self.num_cols()];
        for &b in &self.basis {
            self.in_basis[b] = true;
        }
        self.xb = mat_vec(&self.binv, &self.rhs);
        true
    }

    /// `B⁻¹ · a_col` via the sparse column.
    fn direction(&self, col: usize) -> Vec<Rat> {
        let m = self.num_rows();
        let mut w = vec![Rat::ZERO; m];
        for &(r, v) in &self.cols[col] {
            for (wi, bi) in w.iter_mut().zip(&self.binv) {
                let b = bi[r];
                if !b.is_zero() {
                    *wi += b * v;
                }
            }
        }
        w
    }

    /// Dual prices `y = c_B B⁻¹` for cost vector `c`.
    fn dual_prices(&self, c: &[Rat]) -> Vec<Rat> {
        let m = self.num_rows();
        let mut y = vec![Rat::ZERO; m];
        for (i, &bi) in self.basis.iter().enumerate() {
            let cb = c[bi];
            if cb.is_zero() {
                continue;
            }
            for (yk, &bk) in y.iter_mut().zip(&self.binv[i]) {
                if !bk.is_zero() {
                    *yk += cb * bk;
                }
            }
        }
        y
    }

    /// Reduced cost `c_j - y · a_j`.
    fn reduced_cost(&self, c: &[Rat], y: &[Rat], j: usize) -> Rat {
        let mut r = c[j];
        for &(row, v) in &self.cols[j] {
            let yv = y[row];
            if !yv.is_zero() {
                r -= yv * v;
            }
        }
        r
    }

    fn objective_of(&self, c: &[Rat]) -> Rat {
        let mut z = Rat::ZERO;
        for (i, &bi) in self.basis.iter().enumerate() {
            let cb = c[bi];
            if !cb.is_zero() {
                z += cb * self.xb[i];
            }
        }
        z
    }

    /// Product-form update of `B⁻¹` and `x_B` for a pivot on `row` with
    /// direction `w` (the entering column's `B⁻¹ a_j`).
    fn eta_update(&mut self, row: usize, w: &[Rat]) {
        let inv = w[row].recip();
        let m = self.num_rows();
        for k in 0..m {
            let v = self.binv[row][k];
            if !v.is_zero() {
                self.binv[row][k] = v * inv;
            }
        }
        if !self.xb.is_empty() {
            self.xb[row] = self.xb[row] * inv;
        }
        for i in 0..m {
            if i == row || w[i].is_zero() {
                continue;
            }
            let f = w[i];
            // Split borrows: the pivot row is read, row i is written.
            let (pivot_row, target_row) = if i < row {
                let (lo, hi) = self.binv.split_at_mut(row);
                (&hi[0], &mut lo[i])
            } else {
                let (lo, hi) = self.binv.split_at_mut(i);
                (&lo[row], &mut hi[0])
            };
            for (t, &p) in target_row.iter_mut().zip(pivot_row) {
                if !p.is_zero() {
                    *t -= f * p;
                }
            }
            if !self.xb.is_empty() {
                let adj = f * self.xb[row];
                self.xb[i] -= adj;
            }
        }
    }

    fn pivot(&mut self, row: usize, col: usize, w: &[Rat]) {
        crate::budget::charge_pivot();
        self.eta_update(row, w);
        self.in_basis[self.basis[row]] = false;
        self.in_basis[col] = true;
        self.basis[row] = col;
        self.stats.pivots += 1;
    }

    /// Primal simplex for cost vector `c`: Dantzig pricing with the
    /// Bland fallback. Artificial columns may enter only in phase 1.
    /// Returns `false` if the objective is unbounded above.
    fn primal(&mut self, c: &[Rat], phase1: bool) -> bool {
        let mut bland = false;
        let mut streak = 0u32;
        loop {
            let y = self.dual_prices(c);
            let mut entering: Option<(usize, Rat)> = None;
            for j in 0..self.num_cols() {
                if self.in_basis[j] || (!phase1 && self.artificial[j]) {
                    continue;
                }
                let r = self.reduced_cost(c, &y, j);
                if r > Rat::ZERO {
                    if bland {
                        entering = Some((j, r)); // smallest index: Bland
                        break;
                    }
                    // Dantzig: most positive, ties to the smaller index.
                    if entering.as_ref().is_none_or(|(_, br)| r > *br) {
                        entering = Some((j, r));
                    }
                }
            }
            let Some((col, _)) = entering else {
                return true; // optimal
            };
            let w = self.direction(col);
            // Ratio test; tie-break on smallest basic variable index
            // (with Bland entering this is exactly Bland's rule).
            let mut best: Option<(usize, Rat)> = None;
            for (i, wi) in w.iter().enumerate() {
                if *wi > Rat::ZERO {
                    let ratio = self.xb[i] / *wi;
                    let better = match &best {
                        None => true,
                        Some((bi, br)) => {
                            ratio < *br || (ratio == *br && self.basis[i] < self.basis[*bi])
                        }
                    };
                    if better {
                        best = Some((i, ratio));
                    }
                }
            }
            let Some((row, ratio)) = best else {
                return false; // unbounded direction
            };
            // Attribute the pivot to the rule that actually selected its
            // entering column (the streak update below only affects the
            // *next* iteration's pricing).
            if bland {
                self.stats.bland_pivots += 1;
            }
            if ratio.is_zero() {
                streak += 1;
                if streak >= BLAND_STREAK {
                    bland = true;
                }
            } else {
                streak = 0;
                bland = false;
            }
            if phase1 {
                self.stats.phase1_pivots += 1;
            }
            self.pivot(row, col, &w);
        }
    }

    /// Dual simplex for cost vector `c`, from a dual-feasible basis
    /// (all reduced costs `<= 0`). Repairs negative `x_B` entries;
    /// terminates optimal (`true`) or primal infeasible (`false`).
    pub(crate) fn dual(&mut self, c: &[Rat]) -> bool {
        let mut bland = false;
        let mut streak = 0u32;
        loop {
            // Leaving row: most negative x_B (ties to the smallest basic
            // index); under the fallback, smallest basic index outright.
            let mut leave: Option<usize> = None;
            for (i, x) in self.xb.iter().enumerate() {
                if *x >= Rat::ZERO {
                    continue;
                }
                let better = match leave {
                    None => true,
                    Some(l) => {
                        if bland {
                            self.basis[i] < self.basis[l]
                        } else {
                            *x < self.xb[l] || (*x == self.xb[l] && self.basis[i] < self.basis[l])
                        }
                    }
                };
                if better {
                    leave = Some(i);
                }
            }
            let Some(row) = leave else {
                return true; // primal feasible, hence optimal
            };
            let y = self.dual_prices(c);
            // Entering: among alpha_j < 0, minimize r_j / alpha_j (>= 0),
            // ties to the smallest index (Bland's dual rule).
            let mut enter: Option<(usize, Rat)> = None;
            for j in 0..self.num_cols() {
                if self.in_basis[j] || self.artificial[j] {
                    continue;
                }
                let mut alpha = Rat::ZERO;
                for &(r, v) in &self.cols[j] {
                    let b = self.binv[row][r];
                    if !b.is_zero() {
                        alpha += b * v;
                    }
                }
                if alpha < Rat::ZERO {
                    let r = self.reduced_cost(c, &y, j);
                    debug_assert!(r <= Rat::ZERO, "dual simplex lost dual feasibility");
                    let ratio = r / alpha;
                    if enter.as_ref().is_none_or(|(_, br)| ratio < *br) {
                        enter = Some((j, ratio));
                    }
                }
            }
            let Some((col, ratio)) = enter else {
                return false; // no way to repair this row: infeasible
            };
            // As in primal(): count the pivot against the rule that
            // selected it; the streak update governs the next iteration.
            if bland {
                self.stats.bland_pivots += 1;
            }
            if ratio.is_zero() {
                streak += 1;
                if streak >= BLAND_STREAK {
                    bland = true;
                }
            } else {
                streak = 0;
                bland = false;
            }
            let w = self.direction(col);
            self.stats.dual_pivots += 1;
            self.pivot(row, col, &w);
        }
    }

    /// Phase 1: drive the artificial variables to zero. Returns `false`
    /// if the model is infeasible. On success every remaining basic
    /// artificial sits in a redundant row (its transformed row is zero on
    /// all non-artificial columns), where it is provably inert: no later
    /// pivot can move it or its row (see `drive_out_artificials`).
    fn phase1(&mut self) -> bool {
        if !self.has_artificials() {
            return true;
        }
        let c1: Vec<Rat> = self
            .artificial
            .iter()
            .map(|&a| if a { -Rat::ONE } else { Rat::ZERO })
            .collect();
        let bounded = self.primal(&c1, true);
        debug_assert!(bounded, "phase 1 is never unbounded (objective <= 0)");
        if self.objective_of(&c1) < Rat::ZERO {
            return false;
        }
        self.drive_out_artificials();
        true
    }

    /// Pivots zero-level basic artificials out wherever their row has a
    /// nonzero transformed entry on a non-artificial column. Rows where
    /// it has none are redundant: for every non-artificial column `j`,
    /// `(B⁻¹a_j)` is zero in that position, and the product-form update
    /// preserves that zero under any pivot with a non-artificial entering
    /// column — the artificial stays basic at exactly zero forever.
    fn drive_out_artificials(&mut self) {
        for row in 0..self.num_rows() {
            if !self.artificial[self.basis[row]] {
                continue;
            }
            let col = (0..self.num_cols()).find(|&j| {
                if self.artificial[j] || self.in_basis[j] {
                    return false;
                }
                let mut alpha = Rat::ZERO;
                for &(r, v) in &self.cols[j] {
                    let b = self.binv[row][r];
                    if !b.is_zero() {
                        alpha += b * v;
                    }
                }
                !alpha.is_zero()
            });
            if let Some(col) = col {
                // Degenerate pivot (the row is at zero): swaps the basis
                // without moving x_B.
                let w = self.direction(col);
                self.pivot(row, col, &w);
            }
        }
    }

    /// The phase-2 cost vector: model objective over structural columns.
    pub(crate) fn phase2_costs(&self, model: &LpModel) -> Vec<Rat> {
        let mut c = vec![Rat::ZERO; self.num_cols()];
        for (v, coeff) in model.objective().terms() {
            c[v.index()] = coeff;
        }
        c
    }

    /// Packages the final state as a [`Solution`].
    pub(crate) fn finish(&self, status: SolveStatus, model: &LpModel) -> Solution {
        if status != SolveStatus::Optimal {
            let mut s = Solution::non_optimal(status);
            s.stats = self.stats;
            return s;
        }
        let mut values = vec![Rat::ZERO; self.n_struct];
        for (i, &bi) in self.basis.iter().enumerate() {
            if bi < self.n_struct {
                values[bi] = self.xb[i];
            }
        }
        let objective = model.objective().eval(&values);
        Solution {
            status: SolveStatus::Optimal,
            objective,
            values,
            stats: self.stats,
        }
    }
}

fn identity(m: usize) -> Vec<Vec<Rat>> {
    let mut id = vec![vec![Rat::ZERO; m]; m];
    for (i, row) in id.iter_mut().enumerate() {
        row[i] = Rat::ONE;
    }
    id
}

fn mat_vec(a: &[Vec<Rat>], v: &[Rat]) -> Vec<Rat> {
    a.iter()
        .map(|row| {
            let mut acc = Rat::ZERO;
            for (x, &y) in row.iter().zip(v) {
                if !x.is_zero() && !y.is_zero() {
                    acc += *x * y;
                }
            }
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{LinExpr, LpModel};

    fn expr(terms: &[(crate::model::VarId, i64)]) -> LinExpr {
        let mut e = LinExpr::new();
        for &(v, c) in terms {
            e.add_term(v, c);
        }
        e
    }

    #[test]
    fn textbook_max() {
        // max 3x + 2y  s.t.  x + y <= 4,  x + 3y <= 6,  x >= 0, y >= 0.
        // Optimum at (4, 0): objective 12.
        let mut m = LpModel::new();
        let x = m.add_var("x");
        let y = m.add_var("y");
        m.add_constraint(expr(&[(x, 1), (y, 1)]), CmpOp::Le, 4);
        m.add_constraint(expr(&[(x, 1), (y, 3)]), CmpOp::Le, 6);
        m.set_objective(expr(&[(x, 3), (y, 2)]));
        let s = solve_lp(&m);
        assert_eq!(s.status, SolveStatus::Optimal);
        assert_eq!(s.objective, Rat::int(12));
        assert_eq!(s.value(x), Rat::int(4));
        assert_eq!(s.value(y), Rat::ZERO);
        assert!(s.stats.pivots > 0);
    }

    #[test]
    fn fractional_optimum() {
        // max x + y  s.t.  2x + 2y <= 3 → obj 3/2 on the x+y=3/2 facet.
        let mut m = LpModel::new();
        let x = m.add_var("x");
        let y = m.add_var("y");
        m.add_constraint(expr(&[(x, 2), (y, 2)]), CmpOp::Le, 3);
        m.set_objective(expr(&[(x, 1), (y, 1)]));
        let s = solve_lp(&m);
        assert_eq!(s.status, SolveStatus::Optimal);
        assert_eq!(s.objective, Rat::new(3, 2));
    }

    #[test]
    fn detects_infeasible() {
        // x <= 1 and x >= 2.
        let mut m = LpModel::new();
        let x = m.add_var("x");
        m.add_constraint(expr(&[(x, 1)]), CmpOp::Le, 1);
        m.add_constraint(expr(&[(x, 1)]), CmpOp::Ge, 2);
        m.set_objective(expr(&[(x, 1)]));
        assert_eq!(solve_lp(&m).status, SolveStatus::Infeasible);
    }

    #[test]
    fn detects_unbounded() {
        let mut m = LpModel::new();
        let x = m.add_var("x");
        let y = m.add_var("y");
        m.add_constraint(expr(&[(y, 1)]), CmpOp::Le, 5);
        m.set_objective(expr(&[(x, 1)]));
        assert_eq!(solve_lp(&m).status, SolveStatus::Unbounded);
    }

    #[test]
    fn equality_constraints() {
        // max 2x + y  s.t.  x + y == 3, x <= 1  →  x=1, y=2.
        let mut m = LpModel::new();
        let x = m.add_var("x");
        let y = m.add_var("y");
        m.add_constraint(expr(&[(x, 1), (y, 1)]), CmpOp::Eq, 3);
        m.add_constraint(expr(&[(x, 1)]), CmpOp::Le, 1);
        m.set_objective(expr(&[(x, 2), (y, 1)]));
        let s = solve_lp(&m);
        assert_eq!(s.status, SolveStatus::Optimal);
        assert_eq!(s.objective, Rat::int(4));
        assert_eq!(s.value(x), Rat::int(1));
        assert_eq!(s.value(y), Rat::int(2));
    }

    #[test]
    fn negative_rhs_normalized() {
        // -x <= -2  ⇔  x >= 2; max -x  → x = 2, obj -2.
        let mut m = LpModel::new();
        let x = m.add_var("x");
        m.add_constraint(expr(&[(x, -1)]), CmpOp::Le, -2);
        m.add_constraint(expr(&[(x, 1)]), CmpOp::Le, 10);
        m.set_objective(expr(&[(x, -1)]));
        let s = solve_lp(&m);
        assert_eq!(s.status, SolveStatus::Optimal);
        assert_eq!(s.objective, Rat::int(-2));
    }

    #[test]
    fn degenerate_does_not_cycle() {
        // Classic degeneracy: redundant constraints through the optimum.
        let mut m = LpModel::new();
        let x = m.add_var("x");
        let y = m.add_var("y");
        m.add_constraint(expr(&[(x, 1), (y, 1)]), CmpOp::Le, 2);
        m.add_constraint(expr(&[(x, 1)]), CmpOp::Le, 2);
        m.add_constraint(expr(&[(y, 1)]), CmpOp::Le, 2);
        m.add_constraint(expr(&[(x, 2), (y, 2)]), CmpOp::Le, 4);
        m.set_objective(expr(&[(x, 1), (y, 1)]));
        let s = solve_lp(&m);
        assert_eq!(s.status, SolveStatus::Optimal);
        assert_eq!(s.objective, Rat::int(2));
    }

    #[test]
    fn redundant_equalities_kept_inert() {
        // x + y == 2 twice: the duplicate row keeps a zero-level
        // artificial basic; the solve must still reach the optimum.
        let mut m = LpModel::new();
        let x = m.add_var("x");
        let y = m.add_var("y");
        m.add_constraint(expr(&[(x, 1), (y, 1)]), CmpOp::Eq, 2);
        m.add_constraint(expr(&[(x, 1), (y, 1)]), CmpOp::Eq, 2);
        m.set_objective(expr(&[(x, 1)]));
        let s = solve_lp(&m);
        assert_eq!(s.status, SolveStatus::Optimal);
        assert_eq!(s.objective, Rat::int(2));
        assert!(m.is_feasible(&s.values));
    }

    #[test]
    fn solution_point_is_feasible() {
        let mut m = LpModel::new();
        let x = m.add_var("x");
        let y = m.add_var("y");
        let z = m.add_var("z");
        m.add_constraint(expr(&[(x, 1), (y, 2), (z, 1)]), CmpOp::Le, 10);
        m.add_constraint(expr(&[(x, 1), (y, -1)]), CmpOp::Ge, 1);
        m.add_constraint(expr(&[(z, 1)]), CmpOp::Eq, 2);
        m.set_objective(expr(&[(x, 1), (y, 1), (z, 1)]));
        let s = solve_lp(&m);
        assert_eq!(s.status, SolveStatus::Optimal);
        assert!(m.is_feasible(&s.values));
    }

    #[test]
    fn warm_start_skips_phase1_and_matches_cold() {
        // An equality-heavy model (phase 1 does real work), re-solved
        // with a different objective from the cached feasible basis.
        let mut m = LpModel::new();
        let x = m.add_var("x");
        let y = m.add_var("y");
        let z = m.add_var("z");
        m.add_constraint(expr(&[(x, 1), (y, 1), (z, 1)]), CmpOp::Eq, 6);
        m.add_constraint(expr(&[(x, 1), (y, -1)]), CmpOp::Ge, 1);
        m.add_constraint(expr(&[(z, 1)]), CmpOp::Le, 3);
        m.set_objective(expr(&[(x, 1), (y, 2), (z, 3)]));
        let first = solve_lp_warm(&m, None);
        assert_eq!(first.solution.status, SolveStatus::Optimal);
        let basis = first.feasible_basis.expect("feasible");

        // New objective, same constraints.
        m.set_objective(expr(&[(x, 5), (y, 1), (z, 1)]));
        let cold = solve_lp_warm(&m, None);
        let warm = solve_lp_warm(&m, Some(&basis));
        assert_eq!(warm.solution, cold.solution); // bit-identical result
        assert_eq!(warm.solution.stats.warm_starts, 1);
        assert_eq!(warm.solution.stats.phase1_skips, 1);
        assert_eq!(warm.solution.stats.phase1_pivots, 0);
        assert!(cold.solution.stats.phase1_pivots > 0);
    }

    #[test]
    fn stale_warm_basis_degrades_to_cold() {
        let mut m = LpModel::new();
        let x = m.add_var("x");
        m.add_constraint(expr(&[(x, 1)]), CmpOp::Le, 4);
        m.set_objective(expr(&[(x, 1)]));
        let bogus = WarmBasis {
            cols: vec![7, 9],
            num_rows: 2,
            num_cols: 11,
        };
        let s = solve_lp_warm(&m, Some(&bogus));
        assert_eq!(s.solution.status, SolveStatus::Optimal);
        assert_eq!(s.solution.objective, Rat::int(4));
        assert_eq!(s.solution.stats.warm_starts, 0);
    }

    #[test]
    fn stale_basis_cannot_smuggle_infeasibility_past_phase1() {
        // Cache the feasible basis of {x+y==2, x+y==2} — the redundant
        // row keeps an inert artificial basic at zero. Reusing it on the
        // dimension-compatible but infeasible {x+y==2, x+y==3} would put
        // that artificial at level 1; the warm start must be refused and
        // the cold solve must report infeasibility.
        let mut a = LpModel::new();
        let x = a.add_var("x");
        let y = a.add_var("y");
        a.add_constraint(expr(&[(x, 1), (y, 1)]), CmpOp::Eq, 2);
        a.add_constraint(expr(&[(x, 1), (y, 1)]), CmpOp::Eq, 2);
        a.set_objective(expr(&[(x, 1)]));
        let basis = solve_lp_warm(&a, None).feasible_basis.expect("feasible");

        let mut b = LpModel::new();
        let x = b.add_var("x");
        let y = b.add_var("y");
        b.add_constraint(expr(&[(x, 1), (y, 1)]), CmpOp::Eq, 2);
        b.add_constraint(expr(&[(x, 1), (y, 1)]), CmpOp::Eq, 3);
        b.set_objective(expr(&[(x, 1)]));
        let s = solve_lp_warm(&b, Some(&basis));
        assert_eq!(s.solution.status, SolveStatus::Infeasible);
        assert_eq!(s.solution.stats.warm_starts, 0);
    }

    #[test]
    fn dual_simplex_reoptimizes_after_bound_row() {
        // max x + y  s.t.  x + y <= 4; then append x <= 1 and repair.
        let mut m = LpModel::new();
        let x = m.add_var("x");
        let y = m.add_var("y");
        m.add_constraint(expr(&[(x, 1), (y, 1)]), CmpOp::Le, 4);
        m.set_objective(expr(&[(x, 2), (y, 1)]));
        let first = solve_lp_warm(&m, None);
        assert_eq!(first.solution.objective, Rat::int(8)); // x = 4
        let optimal = first.optimal_basis.expect("optimal");

        let mut t = Revised::build(&m);
        let slack = t.append_bound_row(x.index(), true, Rat::int(1));
        let mut basis = optimal.cols;
        basis.push(slack);
        assert!(t.try_warm_start_dual(&basis));
        let c = t.phase2_costs(&m);
        assert!(t.dual(&c));
        let s = t.finish(SolveStatus::Optimal, &m);
        // x clamped to 1, y picks up the slack: 2·1 + 3 = 5.
        assert_eq!(s.objective, Rat::int(5));
        assert_eq!(s.value(x), Rat::int(1));
        assert_eq!(s.value(y), Rat::int(3));
        assert!(s.stats.dual_pivots > 0);
    }
}
