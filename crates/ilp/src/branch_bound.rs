//! Integer optimisation via branch & bound on the exact LP relaxation,
//! with **warm-started child nodes**.
//!
//! Branching appends a single variable-bound row to the parent's
//! (already solved) instance. The parent's optimal basis, extended with
//! the new row's slack, stays *dual feasible* — the bordered basis
//! `B' = [[B, 0], [gᵀ, 1]]` keeps every reduced cost unchanged — so each
//! child re-solves with a handful of dual-simplex pivots instead of a
//! cold two-phase solve. An up-branch `x ≥ u` is encoded as `-x ≤ -u` so
//! the appended row always carries a basic slack (no artificials, no
//! phase 1). Child nodes that lose their warm basis (never expected —
//! a bordered extension of an invertible basis is invertible) fall back
//! to a cold solve of the equivalent constraint-extended model.

use std::fmt;

use crate::model::{CmpOp, LinExpr, LpModel, Solution, SolveStats, SolveStatus, VarId};
use crate::rational::Rat;
use crate::simplex::{solve_lp_warm, Revised, WarmBasis};

/// Branch-and-bound configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IlpConfig {
    /// Maximum number of explored nodes before giving up.
    pub max_nodes: usize,
}

impl Default for IlpConfig {
    fn default() -> Self {
        IlpConfig { max_nodes: 200_000 }
    }
}

/// Branch-and-bound failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IlpError {
    /// The node budget was exhausted before proving optimality.
    NodeLimit {
        /// The configured limit.
        limit: usize,
    },
    /// The relaxation (and hence the ILP) is unbounded above.
    Unbounded,
}

impl fmt::Display for IlpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IlpError::NodeLimit { limit } => {
                write!(f, "branch-and-bound exceeded {limit} nodes")
            }
            IlpError::Unbounded => f.write_str("integer program is unbounded above"),
        }
    }
}

impl std::error::Error for IlpError {}

/// Statistics of a completed ILP solve.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IlpStats {
    /// Branch-and-bound nodes explored (1 = relaxation was already integral).
    pub nodes: usize,
}

/// The full outcome of a (possibly warm-started) ILP solve.
pub(crate) struct IlpOutcome {
    pub solution: Solution,
    pub stats: IlpStats,
    /// The root relaxation's phase-1 feasible basis — what
    /// [`crate::context::SolveContext`] caches for the next solve of the
    /// same constraint system.
    pub root_feasible_basis: Option<WarmBasis>,
    /// Whether the supplied warm basis was actually adopted at the root.
    pub root_warm_used: bool,
}

/// One branching decision: `var <= bound` (down) or `var >= bound` (up).
#[derive(Clone, Copy)]
struct Branch {
    var: VarId,
    upper: bool,
    bound: Rat,
}

/// A pending subproblem: the branch trail plus the parent's optimal
/// basis (columns per row of the parent's extended instance).
struct Node {
    bounds: Vec<Branch>,
    parent_basis: Option<Vec<usize>>,
}

/// Solves `model` to integer optimality (variables marked integral must take
/// integer values; continuous variables remain free).
///
/// # Errors
///
/// * [`IlpError::NodeLimit`] if the search exceeds `config.max_nodes`;
/// * [`IlpError::Unbounded`] if the relaxation is unbounded above.
pub fn solve_ilp(model: &LpModel, config: IlpConfig) -> Result<(Solution, IlpStats), IlpError> {
    let out = solve_ilp_warm(model, config, None)?;
    Ok((out.solution, out.stats))
}

/// [`solve_ilp`] with an optional warm basis for the root relaxation
/// (the phase-1 feasible basis of a previous solve of the *same*
/// constraint system — see [`crate::context::SolveContext`]).
pub(crate) fn solve_ilp_warm(
    model: &LpModel,
    config: IlpConfig,
    warm_root: Option<&WarmBasis>,
) -> Result<IlpOutcome, IlpError> {
    let mut agg = SolveStats::default();
    let mut stats = IlpStats::default();
    let mut best: Option<Solution> = None;
    let mut root_feasible_basis = None;
    let mut root_warm_used = false;

    let mut stack: Vec<Node> = vec![Node {
        bounds: Vec::new(),
        parent_basis: None,
    }];

    while let Some(node) = stack.pop() {
        if stats.nodes >= config.max_nodes {
            return Err(IlpError::NodeLimit {
                limit: config.max_nodes,
            });
        }
        stats.nodes += 1;

        let (relax, optimal_basis) = if node.bounds.is_empty() {
            // Root relaxation (optionally warm-started by the caller).
            let r = solve_lp_warm(model, warm_root);
            agg.absorb(&r.solution.stats);
            root_warm_used = r.solution.stats.warm_starts > 0;
            root_feasible_basis = r.feasible_basis;
            (r.solution, r.optimal_basis.map(|b| b.cols))
        } else {
            solve_child(model, &node, &mut agg)
        };

        match relax.status {
            SolveStatus::Infeasible => continue,
            SolveStatus::Unbounded => {
                // Unbounded at the root means the ILP is unbounded; at a
                // child it cannot happen (children are restrictions).
                return Err(IlpError::Unbounded);
            }
            SolveStatus::Optimal => {}
        }
        if let Some(b) = &best {
            if relax.objective <= b.objective {
                continue; // cannot beat the incumbent
            }
        }
        // Most fractional integer variable.
        let frac_var = model
            .integer_vars()
            .filter_map(|v| {
                let val = relax.values[v.index()];
                if val.is_integer() {
                    None
                } else {
                    let f = val - Rat::int(val.floor());
                    // distance from 1/2, smaller = more fractional
                    let d = (f - Rat::new(1, 2)).abs();
                    Some((v, val, d))
                }
            })
            .min_by(|a, b| a.2.cmp(&b.2).then(a.0.cmp(&b.0)));

        match frac_var {
            None => {
                // Integral on all integer vars: candidate incumbent.
                let better = best
                    .as_ref()
                    .map(|b| relax.objective > b.objective)
                    .unwrap_or(true);
                if better {
                    best = Some(relax);
                }
            }
            Some((v, val, _)) => {
                let mut b_down = node.bounds.clone();
                b_down.push(Branch {
                    var: v,
                    upper: true,
                    bound: Rat::int(val.floor()),
                });
                let mut b_up = node.bounds;
                b_up.push(Branch {
                    var: v,
                    upper: false,
                    bound: Rat::int(val.ceil()),
                });
                // Push "down" first so the "up" branch (usually better for
                // maximisation of counts) is explored first.
                stack.push(Node {
                    bounds: b_down,
                    parent_basis: optimal_basis.clone(),
                });
                stack.push(Node {
                    bounds: b_up,
                    parent_basis: optimal_basis,
                });
            }
        }
    }

    let mut solution = match best {
        Some(s) => s,
        None => Solution::non_optimal(SolveStatus::Infeasible),
    };
    solution.stats = agg;
    Ok(IlpOutcome {
        solution,
        stats,
        root_feasible_basis,
        root_warm_used,
    })
}

/// Solves a non-root node: dual simplex from the parent's optimal basis
/// when available, cold otherwise. Returns the relaxation solution and
/// (when optimal) the node's optimal basis for its own children.
fn solve_child(
    model: &LpModel,
    node: &Node,
    agg: &mut SolveStats,
) -> (Solution, Option<Vec<usize>>) {
    if let Some(parent) = &node.parent_basis {
        let mut t = Revised::build(model);
        let mut last_slack = 0;
        for br in &node.bounds {
            last_slack = t.append_bound_row(br.var.index(), br.upper, br.bound);
        }
        // The parent basis covers every row except the newest bound row,
        // whose slack is basic by construction.
        let mut basis = parent.clone();
        basis.push(last_slack);
        if t.try_warm_start_dual(&basis) {
            let c = t.phase2_costs(model);
            let feasible = t.dual(&c);
            agg.absorb(&t.stats);
            return if feasible {
                let optimal = t.warm_basis().cols;
                (t.finish(SolveStatus::Optimal, model), Some(optimal))
            } else {
                (t.finish(SolveStatus::Infeasible, model), None)
            };
        }
        agg.absorb(&t.stats);
    }
    // Cold fallback: rebuild the node as a constraint-extended model.
    // Its column layout differs from the append layout, so the basis is
    // not propagated — children of a cold node also solve cold.
    let mut node_model = model.clone();
    for br in &node.bounds {
        let expr = LinExpr::new().with_term(br.var, Rat::ONE);
        let op = if br.upper { CmpOp::Le } else { CmpOp::Ge };
        node_model.add_constraint(expr, op, br.bound);
    }
    let r = solve_lp_warm(&node_model, None);
    agg.absorb(&r.solution.stats);
    (r.solution, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::VarId;

    fn expr(terms: &[(VarId, i64)]) -> LinExpr {
        let mut e = LinExpr::new();
        for &(v, c) in terms {
            e.add_term(v, c);
        }
        e
    }

    #[test]
    fn knapsack_like() {
        // max 5x + 4y  s.t.  6x + 5y <= 10, x,y integer >= 0.
        // LP optimum fractional; ILP optimum x=0,y=2 (8) or x=1,y=0 (5) →  8.
        let mut m = LpModel::new();
        let x = m.add_int_var("x");
        let y = m.add_int_var("y");
        m.add_constraint(expr(&[(x, 6), (y, 5)]), CmpOp::Le, 10);
        m.set_objective(expr(&[(x, 5), (y, 4)]));
        let (s, stats) = solve_ilp(&m, IlpConfig::default()).expect("solved");
        assert_eq!(s.status, SolveStatus::Optimal);
        assert_eq!(s.objective, Rat::int(8));
        assert!(stats.nodes >= 1);
        // Children were warm-started via dual simplex, not cold-solved.
        assert!(stats.nodes == 1 || s.stats.dual_pivots > 0);
    }

    #[test]
    fn integral_relaxation_takes_one_node() {
        let mut m = LpModel::new();
        let x = m.add_int_var("x");
        m.add_constraint(expr(&[(x, 1)]), CmpOp::Le, 3);
        m.set_objective(expr(&[(x, 1)]));
        let (s, stats) = solve_ilp(&m, IlpConfig::default()).expect("solved");
        assert_eq!(s.objective, Rat::int(3));
        assert_eq!(stats.nodes, 1);
    }

    #[test]
    fn infeasible_ilp() {
        // 2x == 1 with x integer: LP feasible (x=1/2), ILP infeasible.
        let mut m = LpModel::new();
        let x = m.add_int_var("x");
        m.add_constraint(expr(&[(x, 2)]), CmpOp::Eq, 1);
        m.set_objective(expr(&[(x, 1)]));
        let (s, _) = solve_ilp(&m, IlpConfig::default()).expect("finished");
        assert_eq!(s.status, SolveStatus::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut m = LpModel::new();
        let x = m.add_int_var("x");
        m.set_objective(expr(&[(x, 1)]));
        assert_eq!(
            solve_ilp(&m, IlpConfig::default()).unwrap_err(),
            IlpError::Unbounded
        );
    }

    #[test]
    fn node_limit_enforced() {
        let mut m = LpModel::new();
        let vars: Vec<VarId> = (0..6).map(|i| m.add_int_var(format!("x{i}"))).collect();
        // A system with many fractional vertices.
        for w in vars.windows(2) {
            m.add_constraint(expr(&[(w[0], 2), (w[1], 2)]), CmpOp::Le, 3);
        }
        let mut obj = LinExpr::new();
        for &v in &vars {
            obj.add_term(v, 1);
        }
        m.set_objective(obj);
        let res = solve_ilp(&m, IlpConfig { max_nodes: 1 });
        assert!(matches!(res, Err(IlpError::NodeLimit { limit: 1 })));
    }

    #[test]
    fn mixed_integer_continuous() {
        // max x + y, x integer, y continuous; x + y <= 5/2; y <= 1/2.
        // Optimum: y = 1/2, x = 2 → 5/2.
        let mut m = LpModel::new();
        let x = m.add_int_var("x");
        let y = m.add_var("y");
        let mut e = LinExpr::new();
        e.add_term(x, 1).add_term(y, 1);
        m.add_constraint(e, CmpOp::Le, Rat::new(5, 2));
        m.add_constraint(expr(&[(y, 2)]), CmpOp::Le, 1);
        m.set_objective(expr(&[(x, 1), (y, 1)]));
        let (s, _) = solve_ilp(&m, IlpConfig::default()).expect("solved");
        assert_eq!(s.objective, Rat::new(5, 2));
        assert_eq!(s.value(x), Rat::int(2));
        assert_eq!(s.value(y), Rat::new(1, 2));
    }

    #[test]
    fn deep_branching_with_equalities() {
        // Equalities force phase 1 at the root; branching then exercises
        // the dual warm path across several levels.
        let mut m = LpModel::new();
        let x = m.add_int_var("x");
        let y = m.add_int_var("y");
        let z = m.add_int_var("z");
        m.add_constraint(expr(&[(x, 2), (y, 3), (z, 5)]), CmpOp::Eq, 17);
        m.add_constraint(expr(&[(x, 1), (y, 1), (z, 1)]), CmpOp::Le, 6);
        m.set_objective(expr(&[(x, 3), (y, 4), (z, 7)]));
        let (s, stats) = solve_ilp(&m, IlpConfig::default()).expect("solved");
        assert_eq!(s.status, SolveStatus::Optimal);
        // Exhaustive check: 2x+3y+5z=17, x+y+z<=6, all >= 0 integer.
        let mut brute = None::<i64>;
        for x0 in 0..=8i64 {
            for y0 in 0..=5i64 {
                for z0 in 0..=3i64 {
                    if 2 * x0 + 3 * y0 + 5 * z0 == 17 && x0 + y0 + z0 <= 6 {
                        let obj = 3 * x0 + 4 * y0 + 7 * z0;
                        brute = Some(brute.map_or(obj, |b: i64| b.max(obj)));
                    }
                }
            }
        }
        assert_eq!(s.objective, Rat::int(i128::from(brute.expect("feasible"))));
        assert!(stats.nodes >= 1);
    }
}
