//! Integer optimisation via branch & bound on the exact LP relaxation.

use std::fmt;

use crate::model::{CmpOp, LinExpr, LpModel, Solution, SolveStatus};
use crate::rational::Rat;
use crate::simplex::solve_lp;

/// Branch-and-bound configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IlpConfig {
    /// Maximum number of explored nodes before giving up.
    pub max_nodes: usize,
}

impl Default for IlpConfig {
    fn default() -> Self {
        IlpConfig { max_nodes: 200_000 }
    }
}

/// Branch-and-bound failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IlpError {
    /// The node budget was exhausted before proving optimality.
    NodeLimit {
        /// The configured limit.
        limit: usize,
    },
    /// The relaxation (and hence the ILP) is unbounded above.
    Unbounded,
}

impl fmt::Display for IlpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IlpError::NodeLimit { limit } => {
                write!(f, "branch-and-bound exceeded {limit} nodes")
            }
            IlpError::Unbounded => f.write_str("integer program is unbounded above"),
        }
    }
}

impl std::error::Error for IlpError {}

/// Statistics of a completed ILP solve.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IlpStats {
    /// Branch-and-bound nodes explored (1 = relaxation was already integral).
    pub nodes: usize,
}

/// Solves `model` to integer optimality (variables marked integral must take
/// integer values; continuous variables remain free).
///
/// # Errors
///
/// * [`IlpError::NodeLimit`] if the search exceeds `config.max_nodes`;
/// * [`IlpError::Unbounded`] if the relaxation is unbounded above.
pub fn solve_ilp(model: &LpModel, config: IlpConfig) -> Result<(Solution, IlpStats), IlpError> {
    let mut stats = IlpStats::default();
    let mut best: Option<Solution> = None;

    // Work stack of extra bound constraints: (expr, op, rhs) triples.
    type Bounds = Vec<(LinExpr, CmpOp, Rat)>;
    let mut stack: Vec<Bounds> = vec![Vec::new()];

    while let Some(bounds) = stack.pop() {
        if stats.nodes >= config.max_nodes {
            return Err(IlpError::NodeLimit {
                limit: config.max_nodes,
            });
        }
        stats.nodes += 1;

        let mut node = model.clone();
        for (e, op, r) in &bounds {
            node.add_constraint(e.clone(), *op, *r);
        }
        let relax = solve_lp(&node);
        match relax.status {
            SolveStatus::Infeasible => continue,
            SolveStatus::Unbounded => {
                // Unbounded at the root means the ILP is unbounded; at a
                // child it cannot happen (children are restrictions).
                return Err(IlpError::Unbounded);
            }
            SolveStatus::Optimal => {}
        }
        if let Some(b) = &best {
            if relax.objective <= b.objective {
                continue; // cannot beat the incumbent
            }
        }
        // Most fractional integer variable.
        let frac_var = model
            .integer_vars()
            .filter_map(|v| {
                let val = relax.values[v.index()];
                if val.is_integer() {
                    None
                } else {
                    let f = val - Rat::int(val.floor());
                    // distance from 1/2, smaller = more fractional
                    let d = (f - Rat::new(1, 2)).abs();
                    Some((v, val, d))
                }
            })
            .min_by(|a, b| a.2.cmp(&b.2).then(a.0.cmp(&b.0)));

        match frac_var {
            None => {
                // Integral on all integer vars: candidate incumbent.
                let better = best
                    .as_ref()
                    .map(|b| relax.objective > b.objective)
                    .unwrap_or(true);
                if better {
                    best = Some(relax);
                }
            }
            Some((v, val, _)) => {
                let down = Rat::int(val.floor());
                let up = Rat::int(val.ceil());
                let e = LinExpr::new().with_term(v, Rat::ONE);
                // Push "down" first so the "up" branch (usually better for
                // maximisation of counts) is explored first.
                let mut b_down = bounds.clone();
                b_down.push((e.clone(), CmpOp::Le, down));
                let mut b_up = bounds;
                b_up.push((e, CmpOp::Ge, up));
                stack.push(b_down);
                stack.push(b_up);
            }
        }
    }

    match best {
        Some(s) => Ok((s, stats)),
        None => Ok((Solution::non_optimal(SolveStatus::Infeasible), stats)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::VarId;

    fn expr(terms: &[(VarId, i64)]) -> LinExpr {
        let mut e = LinExpr::new();
        for &(v, c) in terms {
            e.add_term(v, c);
        }
        e
    }

    #[test]
    fn knapsack_like() {
        // max 5x + 4y  s.t.  6x + 5y <= 10, x,y integer >= 0.
        // LP optimum fractional; ILP optimum x=0,y=2 (8) or x=1,y=0 (5) →  8.
        let mut m = LpModel::new();
        let x = m.add_int_var("x");
        let y = m.add_int_var("y");
        m.add_constraint(expr(&[(x, 6), (y, 5)]), CmpOp::Le, 10);
        m.set_objective(expr(&[(x, 5), (y, 4)]));
        let (s, stats) = solve_ilp(&m, IlpConfig::default()).expect("solved");
        assert_eq!(s.status, SolveStatus::Optimal);
        assert_eq!(s.objective, Rat::int(8));
        assert!(stats.nodes >= 1);
    }

    #[test]
    fn integral_relaxation_takes_one_node() {
        let mut m = LpModel::new();
        let x = m.add_int_var("x");
        m.add_constraint(expr(&[(x, 1)]), CmpOp::Le, 3);
        m.set_objective(expr(&[(x, 1)]));
        let (s, stats) = solve_ilp(&m, IlpConfig::default()).expect("solved");
        assert_eq!(s.objective, Rat::int(3));
        assert_eq!(stats.nodes, 1);
    }

    #[test]
    fn infeasible_ilp() {
        // 2x == 1 with x integer: LP feasible (x=1/2), ILP infeasible.
        let mut m = LpModel::new();
        let x = m.add_int_var("x");
        m.add_constraint(expr(&[(x, 2)]), CmpOp::Eq, 1);
        m.set_objective(expr(&[(x, 1)]));
        let (s, _) = solve_ilp(&m, IlpConfig::default()).expect("finished");
        assert_eq!(s.status, SolveStatus::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut m = LpModel::new();
        let x = m.add_int_var("x");
        m.set_objective(expr(&[(x, 1)]));
        assert_eq!(
            solve_ilp(&m, IlpConfig::default()).unwrap_err(),
            IlpError::Unbounded
        );
    }

    #[test]
    fn node_limit_enforced() {
        let mut m = LpModel::new();
        let vars: Vec<VarId> = (0..6).map(|i| m.add_int_var(format!("x{i}"))).collect();
        // A system with many fractional vertices.
        for w in vars.windows(2) {
            m.add_constraint(expr(&[(w[0], 2), (w[1], 2)]), CmpOp::Le, 3);
        }
        let mut obj = LinExpr::new();
        for &v in &vars {
            obj.add_term(v, 1);
        }
        m.set_objective(obj);
        let res = solve_ilp(&m, IlpConfig { max_nodes: 1 });
        assert!(matches!(res, Err(IlpError::NodeLimit { limit: 1 })));
    }

    #[test]
    fn mixed_integer_continuous() {
        // max x + y, x integer, y continuous; x + y <= 5/2; y <= 1/2.
        // Optimum: y = 1/2, x = 2 → 5/2.
        let mut m = LpModel::new();
        let x = m.add_int_var("x");
        let y = m.add_var("y");
        let mut e = LinExpr::new();
        e.add_term(x, 1).add_term(y, 1);
        m.add_constraint(e, CmpOp::Le, Rat::new(5, 2));
        m.add_constraint(expr(&[(y, 2)]), CmpOp::Le, 1);
        m.set_objective(expr(&[(x, 1), (y, 1)]));
        let (s, _) = solve_ilp(&m, IlpConfig::default()).expect("solved");
        assert_eq!(s.objective, Rat::new(5, 2));
        assert_eq!(s.value(x), Rat::int(2));
        assert_eq!(s.value(y), Rat::new(1, 2));
    }
}
