//! # wcet-ilp — exact integer linear programming for IPET
//!
//! The Implicit Path Enumeration Technique (IPET, Li & Malik \[17\] in the
//! paper's bibliography) turns WCET computation into an ILP whose optimum is
//! the WCET bound. Because the bound must never be under-estimated, this
//! solver works over **exact rationals** ([`Rat`]) rather than floats:
//!
//! * [`simplex`] — the **two-tier** sparse revised simplex: a
//!   speculative f64 eta-file simplex runs first and its terminal basis
//!   is certified by one exact pass (feasibility + optimality over
//!   [`Rat`]); refuted or ill-conditioned solves fall back to the exact
//!   tier (Dantzig pricing with a Bland anti-cycling fallback,
//!   warm-startable from a cached basis), so every returned optimum is
//!   exact by construction — see [`solve_lp_warm`] vs [`solve_lp_exact`];
//! * [`branch_bound`] — branch & bound whose child nodes re-solve via
//!   dual simplex from the parent's optimal basis;
//! * [`context`] — [`SolveContext`], a cross-solve cache of phase-1
//!   feasible bases for sweep workloads that re-solve one constraint
//!   system under many objectives;
//! * [`dag`] — longest-path fast path / oracle for loop-free instances;
//! * [`dense`] (feature `dense`, default on) — the pre-refactor dense
//!   tableau solver, kept as the differential-test oracle.
//!
//! ## Example
//!
//! ```
//! use wcet_ilp::{CmpOp, IlpConfig, LinExpr, LpModel, solve_ilp};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // max 5x + 4y  s.t.  6x + 5y <= 10  (x, y integer)
//! let mut m = LpModel::new();
//! let x = m.add_int_var("x");
//! let y = m.add_int_var("y");
//! m.add_constraint(LinExpr::new().with_term(x, 6).with_term(y, 5), CmpOp::Le, 10);
//! m.set_objective(LinExpr::new().with_term(x, 5).with_term(y, 4));
//! let (solution, _stats) = solve_ilp(&m, IlpConfig::default())?;
//! assert_eq!(solution.objective.to_integer(), Some(8));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod branch_bound;
pub mod budget;
mod certify;
pub mod context;
pub mod dag;
#[cfg(feature = "dense")]
pub mod dense;
mod fast;
pub mod model;
pub mod rational;
pub mod simplex;

pub use branch_bound::{solve_ilp, IlpConfig, IlpError, IlpStats};
pub use context::{ContextStats, SolveContext, SolveKey};
pub use dag::{longest_path, CycleError};
#[cfg(feature = "dense")]
pub use dense::solve_lp_dense;
pub use model::{CmpOp, Constraint, LinExpr, LpModel, Solution, SolveStats, SolveStatus, VarId};
pub use rational::Rat;
pub use simplex::{
    solve_lp, solve_lp_exact, solve_lp_exact_warm, solve_lp_warm, LpSolve, WarmBasis,
};
