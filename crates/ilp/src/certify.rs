//! The exact referee of the two-tier LP kernel.
//!
//! [`certify_optimal`] takes the *terminal basis* proposed by the f64
//! tier ([`crate::fast`]) and proves, entirely over [`Rat`], that the
//! basis is an optimal basis of the model:
//!
//! 1. **invertibility** — a sparse product-form factorization of the
//!    basis columns succeeds (dependent column sets are refuted);
//! 2. **primal feasibility** — `x_B = B⁻¹b ≥ 0`, with every basic
//!    artificial exactly at zero (a nonzero artificial level means the
//!    basis does not represent a feasible point of the *model*);
//! 3. **dual optimality** — the reduced cost `c_j − yᵀa_j` of every
//!    nonbasic non-artificial column is `≤ 0`, where `y = c_B B⁻¹`.
//!
//! Those three facts imply the basic solution is an exact optimum: for
//! any feasible `x'` (artificials pinned at zero),
//! `cᵀx' = cᵀx_B + Σ_nonbasic r_j·x'_j ≤ cᵀx_B` since every admissible
//! nonbasic `x'_j ≥ 0` carries `r_j ≤ 0`. The returned point is computed
//! in exact arithmetic from the basis — no float ever reaches a result.
//!
//! Unlike the exact simplex's explicit dense `B⁻¹` (O(m²) per pivot),
//! the factorization here is a one-shot **sparse eta file**: columns are
//! eliminated in ascending (nnz, index) order with largest-free-row
//! pivoting, which keeps slack-heavy IPET bases near-triangular, so the
//! whole certificate costs roughly one sparse triangular solve instead
//! of a dense inversion.

use crate::rational::Rat;
use crate::simplex::Revised;

/// One exact product-form transformation (the `Rat` twin of the fast
/// tier's eta): `entries` holds the full eta column, pivot included.
struct Eta {
    row: usize,
    entries: Vec<(usize, Rat)>,
}

impl Eta {
    /// `w ← E·w` on a dense exact vector.
    fn ftran(&self, w: &mut [Rat]) {
        let wr = w[self.row];
        if wr.is_zero() {
            return;
        }
        for &(i, v) in &self.entries {
            if i == self.row {
                w[i] = v * wr;
            } else {
                w[i] += v * wr;
            }
        }
    }

    /// `zᵀ ← zᵀ·E` on a dense exact vector.
    fn btran(&self, z: &mut [Rat]) {
        let mut acc = Rat::ZERO;
        for &(i, v) in &self.entries {
            if !z[i].is_zero() && !v.is_zero() {
                acc += z[i] * v;
            }
        }
        z[self.row] = acc;
    }
}

/// The certified exact basic point: `x_basic[i]` is the value of the
/// basis column assigned to row `i` of the proposed basis (in the order
/// the basis was given).
pub(crate) struct CertifiedPoint {
    pub x_basic: Vec<Rat>,
}

/// Certifies `basis_cols` as an optimal basis of the standard form in
/// `rev` under the phase-2 cost vector `c` (see the module docs).
/// Returns the exact basic point, or `None` if any check fails.
pub(crate) fn certify_optimal(
    rev: &Revised,
    basis_cols: &[usize],
    c: &[Rat],
) -> Option<CertifiedPoint> {
    let m = rev.rhs.len();
    if basis_cols.len() != m || basis_cols.iter().any(|&col| col >= rev.cols.len()) {
        return None;
    }

    // 1. Sparse exact factorization: eta file + row↔column assignment.
    //    (Column order by sparsity; deterministic, but correctness does
    //    not depend on the order — any successful elimination proves
    //    invertibility and yields the same B⁻¹.)
    let mut order: Vec<usize> = (0..m).collect();
    order.sort_by_key(|&i| (rev.cols[basis_cols[i]].len(), basis_cols[i]));
    let mut etas: Vec<Eta> = Vec::with_capacity(m);
    let mut assigned = vec![false; m];
    // `row_of_slot[i]` = the elimination row assigned to `basis_cols[i]`.
    let mut row_of_slot = vec![usize::MAX; m];
    for &slot in &order {
        let col = basis_cols[slot];
        let mut w = vec![Rat::ZERO; m];
        for &(r, v) in &rev.cols[col] {
            w[r] = v;
        }
        for e in &etas {
            e.ftran(&mut w);
        }
        // Deterministic free pivot: smallest unassigned row with a
        // nonzero transformed entry.
        let row = (0..m).find(|&i| !assigned[i] && !w[i].is_zero())?;
        assigned[row] = true;
        row_of_slot[slot] = row;
        let inv = w[row].recip();
        let mut entries = Vec::with_capacity(8);
        entries.push((row, inv));
        for (i, v) in w.iter().enumerate() {
            if i != row && !v.is_zero() {
                entries.push((i, -*v * inv));
            }
        }
        etas.push(Eta { row, entries });
    }

    // 2. Exact x_B = B⁻¹b, re-expressed in basis-slot order; feasibility
    //    plus zero-level basic artificials.
    let mut xb_rows = rev.rhs.clone();
    for e in &etas {
        e.ftran(&mut xb_rows);
    }
    let mut x_basic = vec![Rat::ZERO; m];
    for (slot, &row) in row_of_slot.iter().enumerate() {
        x_basic[slot] = xb_rows[row];
    }
    if x_basic.iter().any(|x| *x < Rat::ZERO) {
        return None;
    }
    if basis_cols
        .iter()
        .zip(&x_basic)
        .any(|(&col, x)| rev.artificial[col] && !x.is_zero())
    {
        return None;
    }

    // 3. Exact duals y = c_B B⁻¹ and the optimality check on every
    //    nonbasic non-artificial column.
    let mut z = vec![Rat::ZERO; m];
    for (slot, &row) in row_of_slot.iter().enumerate() {
        z[row] = c[basis_cols[slot]];
    }
    for e in etas.iter().rev() {
        e.btran(&mut z);
    }
    let mut in_basis = vec![false; rev.cols.len()];
    for &col in basis_cols {
        in_basis[col] = true;
    }
    for (j, col) in rev.cols.iter().enumerate() {
        if in_basis[j] || rev.artificial[j] {
            continue;
        }
        let mut r = c[j];
        for &(row, v) in col {
            if !z[row].is_zero() {
                r -= z[row] * v;
            }
        }
        if r > Rat::ZERO {
            return None;
        }
    }

    Some(CertifiedPoint { x_basic })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{CmpOp, LinExpr, LpModel};

    fn expr(terms: &[(crate::model::VarId, i64)]) -> LinExpr {
        let mut e = LinExpr::new();
        for &(v, c) in terms {
            e.add_term(v, c);
        }
        e
    }

    /// max 3x + 2y s.t. x + y <= 4, x + 3y <= 6. Optimum (4, 0): basis
    /// {x, slack of row 1}.
    fn textbook() -> LpModel {
        let mut m = LpModel::new();
        let x = m.add_var("x");
        let y = m.add_var("y");
        m.add_constraint(expr(&[(x, 1), (y, 1)]), CmpOp::Le, 4);
        m.add_constraint(expr(&[(x, 1), (y, 3)]), CmpOp::Le, 6);
        m.set_objective(expr(&[(x, 3), (y, 2)]));
        m
    }

    #[test]
    fn accepts_the_optimal_basis() {
        let m = textbook();
        let rev = Revised::build(&m);
        let c = rev.phase2_costs(&m);
        // Basis: x (col 0) in some row, slack of row 1 (col 3).
        let point = certify_optimal(&rev, &[0, 3], &c).expect("optimal basis certifies");
        // x = 4 in slot 0, slack = 2 in slot 1.
        assert_eq!(point.x_basic[0], Rat::int(4));
        assert_eq!(point.x_basic[1], Rat::int(2));
    }

    #[test]
    fn refutes_a_suboptimal_basis() {
        let m = textbook();
        let rev = Revised::build(&m);
        let c = rev.phase2_costs(&m);
        // The all-slack basis (origin) is feasible but not optimal.
        assert!(certify_optimal(&rev, &[2, 3], &c).is_none());
    }

    #[test]
    fn refutes_an_infeasible_basis() {
        let m = textbook();
        let rev = Revised::build(&m);
        let c = rev.phase2_costs(&m);
        // Basis {y, slack of row 0}: y = 2 from row 1... then row 0 slack
        // = 2 — feasible but suboptimal. Use {y (row 0), slack row 1}:
        // y = 4, row 1 then needs slack 6 - 12 = -6 < 0 — infeasible.
        assert!(certify_optimal(&rev, &[1, 3], &c).is_none());
    }

    #[test]
    fn refutes_dependent_columns() {
        let m = textbook();
        let rev = Revised::build(&m);
        let c = rev.phase2_costs(&m);
        assert!(certify_optimal(&rev, &[0, 0], &c).is_none());
    }
}
