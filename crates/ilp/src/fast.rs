//! The speculative f64 tier of the two-tier LP kernel.
//!
//! A floating-point revised simplex runs over the same sparse standard
//! form as the exact solver, but keeps its basis inverse as an **eta
//! file** (product-form updates, periodically refactorized) instead of
//! an explicit dense `B⁻¹`, and pivots in `f64` instead of [`Rat`]. Its
//! only job is to *propose a terminal basis*; [`crate::certify`] then
//! proves, in exact arithmetic, that the basis is primal feasible and
//! dual optimal. A certified basis yields the exact optimum (computed in
//! `Rat` from the basis, not from any float); anything less — a
//! non-optimal status claim, a numerical bail-out, a refuted basis —
//! makes [`crate::simplex::solve_lp_warm`] rerun the exact solver from a
//! cold start, so every returned [`Solution`] is exactly optimal either
//! way.
//!
//! **Warm/cold bit-identity.** Phase 2 always starts from a *freshly
//! refactorized* eta file of the phase-1 (or adopted) basis, and the
//! refactorization is a deterministic function of the basis column set.
//! A warm solve adopting the cached basis `B` therefore replays the
//! byte-for-byte float trajectory a cold solve takes after its own
//! phase 1 produced the same `B` — so the certified vertex, like the
//! exact tier's, cannot depend on who populated the cache. This holds
//! because every *cached* basis has f64-phase-1 provenance: the
//! fallback path deliberately withholds the exact tier's feasible basis
//! (see `solve_lp_warm`), so an adopted basis is always the one a cold
//! f64 solve of the same system would have produced.

use crate::certify;
use crate::model::{LpModel, Solution, SolveStats, SolveStatus};
use crate::simplex::{LpSolve, Revised, WarmBasis};

/// Degenerate-pivot streak before Bland's rule engages (mirrors the
/// exact tier).
const BLAND_STREAK: u32 = 12;
/// Eta-file length that triggers a refactorization.
const REFACTOR_EVERY: usize = 64;
/// Entering threshold on reduced costs, scaled by the cost magnitude.
const DANTZIG_TOL: f64 = 1e-9;
/// Smallest acceptable pivot magnitude.
const PIVOT_TOL: f64 = 1e-8;
/// Feasibility slack on basic values (scaled by the rhs magnitude).
const FEAS_TOL: f64 = 1e-9;
/// Hard pivot cap: past this, the instance is declared ill-conditioned.
fn pivot_cap(rows: usize, cols: usize) -> u64 {
    200 + 40 * (rows + cols) as u64
}

/// The eta file as one flat arena of segments: eta `k` is pivot row
/// `rows[k]` plus the entry run `starts[k]..starts[k + 1]` of the
/// shared `idx`/`val` stores. Compared to a `Vec` of per-eta entry
/// vectors this is a single contiguous allocation that `clear()` only
/// resets (capacity survives refactorizations and whole solves), and
/// FTRAN/BTRAN walk one dense `f64` stream instead of chasing a
/// pointer per eta.
///
/// Entry order within a segment is exactly the order the per-eta
/// vectors used — the pivot position (`1/pivot`) first, then the
/// remaining rows ascending — so every FTRAN/BTRAN accumulation
/// happens in the same sequence and the float trajectory is
/// bit-identical to the boxed representation it replaced.
#[derive(Default)]
struct EtaFile {
    /// Pivot row of eta `k`.
    rows: Vec<u32>,
    /// Segment boundaries: eta `k` owns `idx[starts[k]..starts[k+1]]`.
    /// Always `rows.len() + 1` long (leading 0).
    starts: Vec<usize>,
    /// Row indices of the entries, all segments back to back.
    idx: Vec<u32>,
    /// Entry values, parallel to `idx`.
    val: Vec<f64>,
}

impl EtaFile {
    fn len(&self) -> usize {
        self.rows.len()
    }

    /// Drops every eta but keeps the backing stores.
    fn clear(&mut self) {
        self.rows.clear();
        self.starts.clear();
        self.idx.clear();
        self.val.clear();
    }

    /// Appends the eta column for a pivot on `row` of the FTRANed
    /// column `w`: `1/pivot` at `row` first, then `-w_i/pivot` for the
    /// other non-zero rows in ascending order.
    fn push(&mut self, row: usize, w: &[f64]) {
        if self.starts.is_empty() {
            self.starts.push(0);
        }
        let inv = 1.0 / w[row];
        self.idx.push(row as u32);
        self.val.push(inv);
        for (i, &v) in w.iter().enumerate() {
            if i != row && v != 0.0 {
                self.idx.push(i as u32);
                self.val.push(-v * inv);
            }
        }
        self.rows.push(row as u32);
        self.starts.push(self.idx.len());
    }

    /// `w ← E_k·w` (FTRAN step of eta `k`).
    fn ftran(&self, k: usize, w: &mut [f64]) {
        let row = self.rows[k] as usize;
        let wr = w[row];
        if wr == 0.0 {
            return;
        }
        for t in self.starts[k]..self.starts[k + 1] {
            let i = self.idx[t] as usize;
            let v = self.val[t];
            if i == row {
                w[i] = v * wr;
            } else {
                w[i] += v * wr;
            }
        }
    }

    /// `zᵀ ← zᵀ·E_k` (BTRAN step of eta `k`).
    fn btran(&self, k: usize, z: &mut [f64]) {
        let mut acc = 0.0;
        for t in self.starts[k]..self.starts[k + 1] {
            acc += z[self.idx[t] as usize] * self.val[t];
        }
        z[self.rows[k] as usize] = acc;
    }

    /// Applies the whole file forward: `w ← E_last···E_1·w`.
    fn ftran_all(&self, w: &mut [f64]) {
        for k in 0..self.len() {
            self.ftran(k, w);
        }
    }

    /// Applies the whole file backward: `zᵀ ← zᵀ·E_last···E_1`.
    fn btran_all(&self, z: &mut [f64]) {
        for k in (0..self.len()).rev() {
            self.btran(k, z);
        }
    }
}

/// Reusable column/dual buffers of one solve: every FTRAN/BTRAN that
/// used to allocate a fresh `vec![0.0; m]` per pivot now resets one of
/// these in place. Fields are separate so callers can split-borrow
/// (`w` holds the entering column across the `pivot` call while
/// `wcol` serves the refactorization inside it).
#[derive(Default)]
struct FastScratch {
    /// Entering column through the eta file (FTRAN result).
    w: Vec<f64>,
    /// Dual prices `c_B B⁻¹` (BTRAN result).
    y: Vec<f64>,
    /// Per-column elimination buffer of `refactorize`.
    wcol: Vec<f64>,
}

/// The f64 working instance over a borrowed exact standard form.
struct Fast<'a> {
    rev: &'a Revised,
    /// f64 copies of the sparse standard-form columns.
    cols: Vec<Vec<(usize, f64)>>,
    rhs: Vec<f64>,
    basis: Vec<usize>,
    in_basis: Vec<bool>,
    etas: EtaFile,
    xb: Vec<f64>,
    /// Scale of the rhs (for feasibility tolerances).
    b_scale: f64,
    pivots_since_refactor: usize,
    pivot_budget: u64,
    stats: SolveStats,
}

/// Why the fast tier gave up (all reasons route to the exact fallback).
enum Bail {
    /// Pivot budget exhausted / no usable pivot element.
    Numeric,
    /// The f64 run claims the model is infeasible or unbounded; those
    /// claims are never certified, only re-derived exactly.
    NonOptimalClaim,
}

impl<'a> Fast<'a> {
    fn new(rev: &'a Revised) -> Fast<'a> {
        let cols = rev
            .cols
            .iter()
            .map(|c| c.iter().map(|&(r, v)| (r, v.to_f64())).collect())
            .collect();
        let rhs: Vec<f64> = rev.rhs.iter().map(|v| v.to_f64()).collect();
        let b_scale = 1.0 + rhs.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        let m = rhs.len();
        let n = rev.cols.len();
        let mut t = Fast {
            rev,
            cols,
            rhs,
            basis: rev.init_basis.clone(),
            in_basis: vec![false; n],
            etas: EtaFile::default(),
            xb: Vec::new(),
            b_scale,
            pivots_since_refactor: 0,
            pivot_budget: pivot_cap(m, n),
            stats: SolveStats::default(),
        };
        t.reset_cold();
        t
    }

    fn num_rows(&self) -> usize {
        self.rhs.len()
    }

    fn num_cols(&self) -> usize {
        self.cols.len()
    }

    fn reset_cold(&mut self) {
        self.basis.clone_from(&self.rev.init_basis);
        self.in_basis.clear();
        self.in_basis.resize(self.num_cols(), false);
        for &b in &self.basis {
            self.in_basis[b] = true;
        }
        self.etas.clear();
        self.pivots_since_refactor = 0;
        self.xb.clone_from(&self.rhs);
    }

    /// `B⁻¹ a_col` through the eta file, into the reused buffer `w`.
    fn ftran_col(&self, col: usize, w: &mut Vec<f64>) {
        w.clear();
        w.resize(self.num_rows(), 0.0);
        for &(r, v) in &self.cols[col] {
            w[r] = v;
        }
        self.etas.ftran_all(w);
    }

    /// `c_B B⁻¹` through the eta file in reverse, into the reused
    /// buffer `z`.
    fn btran_costs(&self, c: &[f64], z: &mut Vec<f64>) {
        z.clear();
        z.extend(self.basis.iter().map(|&b| c[b]));
        self.etas.btran_all(z);
    }

    fn reduced_cost(&self, c: &[f64], y: &[f64], j: usize) -> f64 {
        let mut r = c[j];
        for &(row, v) in &self.cols[j] {
            r -= y[row] * v;
        }
        r
    }

    /// Rebuilds the eta file from `basis_cols` by sparse elimination
    /// (columns in ascending (nnz, index) order, pivot on the smallest
    /// free row — the same deterministic rule the exact referee uses).
    /// Recomputes `x_B` from the rhs. `false` = dependent/ill-conditioned.
    /// `wcol` is the reused per-column elimination buffer.
    fn refactorize(&mut self, basis_cols: &[usize], wcol: &mut Vec<f64>) -> bool {
        let m = self.num_rows();
        if basis_cols.len() != m || basis_cols.iter().any(|&c| c >= self.num_cols()) {
            return false;
        }
        self.stats.eta_factors += 1;
        self.etas.clear();
        self.pivots_since_refactor = 0;
        let mut order: Vec<usize> = (0..m).collect();
        order.sort_by_key(|&i| (self.cols[basis_cols[i]].len(), basis_cols[i]));
        let mut assigned = vec![false; m];
        let mut basis = vec![usize::MAX; m];
        for &i in &order {
            let col = basis_cols[i];
            wcol.clear();
            wcol.resize(m, 0.0);
            for &(r, v) in &self.cols[col] {
                wcol[r] = v;
            }
            self.etas.ftran_all(wcol);
            // Deterministic free pivot: the largest-magnitude entry on an
            // unassigned row (ties to the smaller row index).
            let mut best: Option<(usize, f64)> = None;
            for (r, &v) in wcol.iter().enumerate() {
                if !assigned[r] && v.abs() > PIVOT_TOL && best.is_none_or(|(_, bv)| v.abs() > bv) {
                    best = Some((r, v.abs()));
                }
            }
            let Some((row, _)) = best else {
                return false;
            };
            assigned[row] = true;
            basis[row] = col;
            self.etas.push(row, wcol);
        }
        self.basis = basis;
        self.in_basis.clear();
        self.in_basis.resize(self.num_cols(), false);
        for &b in &self.basis {
            self.in_basis[b] = true;
        }
        self.xb.clone_from(&self.rhs);
        self.etas.ftran_all(&mut self.xb);
        true
    }

    /// Executes a pivot: extends the eta file, updates `x_B` and the
    /// basis, refactorizes when the file is long (`wcol` serves the
    /// refactorization; `w` stays untouched).
    fn pivot(
        &mut self,
        row: usize,
        col: usize,
        w: &[f64],
        wcol: &mut Vec<f64>,
    ) -> Result<(), Bail> {
        crate::budget::charge_pivot();
        let piv = w[row];
        if piv.abs() <= PIVOT_TOL {
            return Err(Bail::Numeric);
        }
        self.etas.push(row, w);
        let xr = self.xb[row] / piv;
        for (i, wi) in w.iter().enumerate() {
            if i != row && *wi != 0.0 {
                self.xb[i] -= wi * xr;
            }
        }
        self.xb[row] = xr;
        self.in_basis[self.basis[row]] = false;
        self.in_basis[col] = true;
        self.basis[row] = col;
        self.stats.pivots += 1;
        self.pivots_since_refactor += 1;
        if self.pivots_since_refactor >= REFACTOR_EVERY {
            let basis = self.basis.clone();
            if !self.refactorize(&basis, wcol) {
                return Err(Bail::Numeric);
            }
        }
        Ok(())
    }

    /// Primal simplex over `c`; mirrors the exact tier's pricing
    /// (Dantzig, Bland fallback after a degenerate streak).
    fn primal(&mut self, c: &[f64], phase1: bool, scratch: &mut FastScratch) -> Result<bool, Bail> {
        let FastScratch { w, y, wcol } = scratch;
        let c_scale = 1.0 + c.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        let enter_tol = DANTZIG_TOL * c_scale;
        let mut bland = false;
        let mut streak = 0u32;
        loop {
            if self.stats.pivots >= self.pivot_budget {
                return Err(Bail::Numeric);
            }
            self.btran_costs(c, y);
            let mut entering: Option<(usize, f64)> = None;
            for j in 0..self.num_cols() {
                if self.in_basis[j] || (!phase1 && self.rev.artificial[j]) {
                    continue;
                }
                let r = self.reduced_cost(c, y, j);
                if r > enter_tol {
                    if bland {
                        entering = Some((j, r));
                        break;
                    }
                    if entering.as_ref().is_none_or(|&(_, br)| r > br) {
                        entering = Some((j, r));
                    }
                }
            }
            let Some((col, _)) = entering else {
                return Ok(true);
            };
            self.ftran_col(col, w);
            let mut best: Option<(usize, f64)> = None;
            for (i, &wi) in w.iter().enumerate() {
                if wi > PIVOT_TOL {
                    let ratio = (self.xb[i].max(0.0)) / wi;
                    let better = match best {
                        None => true,
                        Some((bi, br)) => {
                            ratio < br - FEAS_TOL * self.b_scale
                                || (ratio <= br + FEAS_TOL * self.b_scale
                                    && self.basis[i] < self.basis[bi])
                        }
                    };
                    if better {
                        best = Some((i, ratio));
                    }
                }
            }
            let Some((row, ratio)) = best else {
                return Ok(false); // unbounded claim
            };
            if bland {
                self.stats.bland_pivots += 1;
            }
            if ratio <= FEAS_TOL * self.b_scale {
                streak += 1;
                if streak >= BLAND_STREAK {
                    bland = true;
                }
            } else {
                streak = 0;
                bland = false;
            }
            if phase1 {
                self.stats.phase1_pivots += 1;
            }
            self.pivot(row, col, w, wcol)?;
        }
    }

    /// Phase 1 (artificial minimization). `Ok(false)` = infeasible claim.
    fn phase1(&mut self, scratch: &mut FastScratch) -> Result<bool, Bail> {
        if !self.rev.artificial.iter().any(|&a| a) {
            return Ok(true);
        }
        let c1: Vec<f64> = self
            .rev
            .artificial
            .iter()
            .map(|&a| if a { -1.0 } else { 0.0 })
            .collect();
        if !self.primal(&c1, true, scratch)? {
            return Err(Bail::Numeric); // phase 1 can never be unbounded
        }
        let residue: f64 = self
            .basis
            .iter()
            .zip(&self.xb)
            .filter(|&(&b, _)| self.rev.artificial[b])
            .map(|(_, x)| x.abs())
            .sum();
        if residue > 1e-7 * self.b_scale {
            return Ok(false);
        }
        self.drive_out_artificials(scratch)?;
        Ok(true)
    }

    /// Pivots zero-level basic artificials out where possible (mirrors
    /// the exact tier; remaining ones sit in redundant rows).
    fn drive_out_artificials(&mut self, scratch: &mut FastScratch) -> Result<(), Bail> {
        let FastScratch { w, wcol, .. } = scratch;
        for row in 0..self.num_rows() {
            if !self.rev.artificial[self.basis[row]] {
                continue;
            }
            let mut found: Option<usize> = None;
            for j in 0..self.num_cols() {
                if self.rev.artificial[j] || self.in_basis[j] {
                    continue;
                }
                self.ftran_col(j, w);
                if w[row].abs() > PIVOT_TOL {
                    found = Some(j);
                    break;
                }
            }
            if let Some(col) = found {
                self.pivot(row, col, w, wcol)?;
            }
        }
        Ok(())
    }

    /// Adopts a warm basis: refactorize, then check primal feasibility
    /// and artificial levels in f64. `false` = back to the cold state.
    fn try_warm_start(&mut self, wb: &WarmBasis, wcol: &mut Vec<f64>) -> bool {
        if wb.num_rows != self.num_rows() || wb.num_cols != self.num_cols() {
            return false;
        }
        if !self.refactorize(&wb.cols, wcol) {
            self.reset_cold();
            return false;
        }
        let tol = 1e-7 * self.b_scale;
        let infeasible = self.xb.iter().any(|&x| x < -tol);
        let artificial_level = self
            .basis
            .iter()
            .zip(&self.xb)
            .any(|(&b, &x)| self.rev.artificial[b] && x.abs() > tol);
        if infeasible || artificial_level {
            self.reset_cold();
            return false;
        }
        self.stats.warm_starts += 1;
        if self.rev.artificial.iter().any(|&a| a) {
            self.stats.phase1_skips += 1;
        }
        true
    }
}

/// Runs the speculative f64 solve and, when its terminal basis passes
/// exact certification, packages the exact optimum. `Err(stats)` = fall
/// back to the exact tier (non-optimal status claim, numerical bail-out,
/// or a refuted basis); the attempt's effort counters come back so the
/// fallback can absorb them.
pub(crate) fn solve_certified(
    model: &LpModel,
    warm: Option<&WarmBasis>,
) -> Result<LpSolve, SolveStats> {
    let rev = Revised::build(model);
    let mut t = Fast::new(&rev);
    let mut scratch = FastScratch::default();
    t.stats.f64_solves += 1;

    let mut c2_f64 = vec![0.0; rev.cols.len()];
    for (v, coeff) in model.objective().terms() {
        c2_f64[v.index()] = coeff.to_f64();
    }
    let outcome = run_fast(&mut t, warm, &c2_f64, &mut scratch);
    let mut stats = t.stats;
    let refute = |mut s: SolveStats| {
        // A skip that did not stick is not a skip: the exact rerun pays
        // phase 1 again, so the counters must not claim otherwise.
        s.warm_starts = 0;
        s.phase1_skips = 0;
        s.fallbacks += 1;
        s
    };
    let (feasible_cols, terminal) = match outcome {
        Ok(pair) => pair,
        Err(_) => return Err(refute(stats)),
    };

    let c2 = rev.phase2_costs(model);
    let Some(point) = certify::certify_optimal(&rev, &terminal, &c2) else {
        return Err(refute(stats));
    };
    let mut values = vec![crate::rational::Rat::ZERO; rev.n_struct];
    for (&col, val) in terminal.iter().zip(&point.x_basic) {
        if col < rev.n_struct {
            values[col] = *val;
        }
    }
    let objective = model.objective().eval(&values);
    stats.certified += 1;
    let num_rows = rev.rhs.len();
    let num_cols = rev.cols.len();
    Ok(LpSolve {
        solution: Solution {
            status: SolveStatus::Optimal,
            objective,
            values,
            stats,
        },
        feasible_basis: Some(WarmBasis {
            cols: feasible_cols,
            num_rows,
            num_cols,
        }),
        optimal_basis: Some(WarmBasis {
            cols: terminal,
            num_rows,
            num_cols,
        }),
    })
}

/// The f64 trajectory proper: warm-or-phase-1, refactorize at the phase
/// boundary (so warm and cold phase 2 start from byte-identical state),
/// then phase 2. Returns `(feasible_basis, terminal_basis)`.
fn run_fast(
    t: &mut Fast<'_>,
    warm: Option<&WarmBasis>,
    c2: &[f64],
    scratch: &mut FastScratch,
) -> Result<(Vec<usize>, Vec<usize>), Bail> {
    let mut warm_ok = false;
    if let Some(wb) = warm {
        warm_ok = t.try_warm_start(wb, &mut scratch.wcol);
    }
    if !warm_ok {
        if !t.phase1(scratch)? {
            return Err(Bail::NonOptimalClaim); // infeasible claim
        }
        // Phase boundary: restart the eta file from the feasible basis so
        // the phase-2 float trajectory depends only on that basis (the
        // warm path enters phase 2 through the same refactorization).
        let basis = t.basis.clone();
        if !t.refactorize(&basis, &mut scratch.wcol) {
            return Err(Bail::Numeric);
        }
    }
    let feasible = t.basis.clone();
    if !t.primal(c2, false, scratch)? {
        return Err(Bail::NonOptimalClaim); // unbounded claim
    }
    Ok((feasible, t.basis.clone()))
}
