//! Longest-path computation on DAGs.
//!
//! For loop-free CFGs, IPET degenerates to a longest-path problem; solving
//! it directly is both a fast path and an independent oracle used to
//! cross-check the ILP pipeline in tests.

use std::fmt;

/// Error returned when the input graph contains a cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CycleError;

impl fmt::Display for CycleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("graph contains a cycle; longest path is undefined")
    }
}

impl std::error::Error for CycleError {}

/// Computes the maximum, over all paths from `source` to any node in
/// `sinks`, of the sum of node weights along the path (both endpoints
/// included) plus edge weights.
///
/// Nodes unreachable from `source` are ignored. Returns `None` when no sink
/// is reachable.
///
/// # Errors
///
/// Returns [`CycleError`] if the graph has a cycle reachable from `source`.
///
/// # Panics
///
/// Panics if an edge or sink references a node `>= n`, or `source >= n`.
pub fn longest_path(
    n: usize,
    edges: &[(usize, usize, u64)],
    node_weight: &[u64],
    source: usize,
    sinks: &[usize],
) -> Result<Option<u64>, CycleError> {
    assert!(source < n, "source out of range");
    assert_eq!(node_weight.len(), n, "one weight per node required");
    for &(a, b, _) in edges {
        assert!(a < n && b < n, "edge endpoint out of range");
    }
    for &s in sinks {
        assert!(s < n, "sink out of range");
    }

    // Restrict to nodes reachable from source.
    let mut adj: Vec<Vec<(usize, u64)>> = vec![Vec::new(); n];
    for &(a, b, w) in edges {
        adj[a].push((b, w));
    }
    let mut reach = vec![false; n];
    let mut stack = vec![source];
    reach[source] = true;
    while let Some(v) = stack.pop() {
        for &(s, _) in &adj[v] {
            if !reach[s] {
                reach[s] = true;
                stack.push(s);
            }
        }
    }

    // Kahn topological order over the reachable subgraph.
    let mut indeg = vec![0usize; n];
    for v in 0..n {
        if reach[v] {
            for &(s, _) in &adj[v] {
                if reach[s] {
                    indeg[s] += 1;
                }
            }
        }
    }
    let mut queue: Vec<usize> = (0..n).filter(|&v| reach[v] && indeg[v] == 0).collect();
    let mut order = Vec::new();
    while let Some(v) = queue.pop() {
        order.push(v);
        for &(s, _) in &adj[v] {
            if reach[s] {
                indeg[s] -= 1;
                if indeg[s] == 0 {
                    queue.push(s);
                }
            }
        }
    }
    let reachable_count = reach.iter().filter(|&&r| r).count();
    if order.len() != reachable_count {
        return Err(CycleError);
    }

    // DP over topological order.
    let mut dist: Vec<Option<u64>> = vec![None; n];
    dist[source] = Some(node_weight[source]);
    for &v in &order {
        let Some(dv) = dist[v] else { continue };
        for &(s, w) in &adj[v] {
            let cand = dv + w + node_weight[s];
            if dist[s].is_none_or(|cur| cand > cur) {
                dist[s] = Some(cand);
            }
        }
    }
    Ok(sinks.iter().filter_map(|&s| dist[s]).max())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straight_line() {
        // 0 -> 1 -> 2 with node weights 1,2,3.
        let d = longest_path(3, &[(0, 1, 0), (1, 2, 0)], &[1, 2, 3], 0, &[2])
            .expect("acyclic")
            .expect("reachable");
        assert_eq!(d, 6);
    }

    #[test]
    fn diamond_takes_heavier_arm() {
        // 0 -> {1 (w=10), 2 (w=1)} -> 3.
        let edges = [(0, 1, 0), (0, 2, 0), (1, 3, 0), (2, 3, 0)];
        let d = longest_path(4, &edges, &[1, 10, 1, 1], 0, &[3])
            .expect("acyclic")
            .expect("reachable");
        assert_eq!(d, 12);
    }

    #[test]
    fn edge_weights_count() {
        let d = longest_path(2, &[(0, 1, 5)], &[1, 1], 0, &[1])
            .expect("acyclic")
            .expect("reachable");
        assert_eq!(d, 7);
    }

    #[test]
    fn unreachable_sink_is_none() {
        let d = longest_path(3, &[(0, 1, 0)], &[1, 1, 1], 0, &[2]).expect("acyclic");
        assert_eq!(d, None);
    }

    #[test]
    fn cycle_detected() {
        let e = longest_path(2, &[(0, 1, 0), (1, 0, 0)], &[1, 1], 0, &[1]).unwrap_err();
        assert_eq!(e, CycleError);
    }

    #[test]
    fn cycle_outside_reachable_part_is_fine() {
        // 1 <-> 2 cycle, but source 0 only reaches 3.
        let edges = [(1, 2, 0), (2, 1, 0), (0, 3, 0)];
        let d = longest_path(4, &edges, &[1, 1, 1, 1], 0, &[3])
            .expect("cycle not reachable")
            .expect("reachable");
        assert_eq!(d, 2);
    }

    #[test]
    fn multiple_sinks_take_max() {
        let edges = [(0, 1, 0), (0, 2, 0)];
        let d = longest_path(3, &edges, &[1, 5, 9], 0, &[1, 2])
            .expect("acyclic")
            .expect("reachable");
        assert_eq!(d, 10);
    }
}
