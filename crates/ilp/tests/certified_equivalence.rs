//! Differential suite for the two-tier kernel: every model solved
//! through the default (f64-speculated, exactly certified) path must
//! agree with the exact tier — same status, same exact objective, and
//! the same ceiling (the WCET a caller would extract) — and a
//! pathologically conditioned model must actually trip the referee, not
//! slip a float optimum through.

use proptest::prelude::*;
use wcet_ilp::{
    solve_ilp, solve_lp, solve_lp_exact, CmpOp, IlpConfig, LinExpr, LpModel, Rat, SolveStatus,
    VarId,
};

const BOX_BOUND: i64 = 8;

/// Random small models with all three comparison operators and possibly
/// negative right-hand sides (phase 1, infeasibility and unboundedness
/// all reachable), boxed so ILP enumeration stays finite.
fn arb_model() -> impl Strategy<Value = LpModel> {
    let nvars = 1..=3usize;
    let ncons = 0..=4usize;
    (nvars, ncons).prop_flat_map(|(n, m)| {
        let coeffs = proptest::collection::vec(-4i64..=4, n * m);
        let ops = proptest::collection::vec(0usize..=2, m);
        let rhs = proptest::collection::vec(-6i64..=12, m);
        let obj = proptest::collection::vec(-3i64..=5, n);
        (Just(n), Just(m), coeffs, ops, rhs, obj).prop_map(|(n, m, coeffs, ops, rhs, obj)| {
            let mut model = LpModel::new();
            let vars: Vec<VarId> = (0..n).map(|i| model.add_int_var(format!("x{i}"))).collect();
            for &v in &vars {
                model.add_constraint(LinExpr::new().with_term(v, 1), CmpOp::Le, BOX_BOUND);
            }
            for c in 0..m {
                let mut e = LinExpr::new();
                for (i, &v) in vars.iter().enumerate() {
                    e.add_term(v, coeffs[c * n + i]);
                }
                let op = [CmpOp::Le, CmpOp::Ge, CmpOp::Eq][ops[c]];
                model.add_constraint(e, op, rhs[c]);
            }
            let mut o = LinExpr::new();
            for (i, &v) in vars.iter().enumerate() {
                o.add_term(v, obj[i]);
            }
            model.set_objective(o);
            model
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// LP: the certified path equals the exact tier on status, exact
    /// objective, and the WCET-style ceiling.
    #[test]
    fn certified_lp_equals_exact(model in arb_model()) {
        let exact = solve_lp_exact(&model);
        let fast = solve_lp(&model);
        prop_assert_eq!(exact.status, fast.status);
        if exact.status == SolveStatus::Optimal {
            prop_assert_eq!(exact.objective, fast.objective);
            prop_assert_eq!(exact.objective.ceil(), fast.objective.ceil());
            prop_assert!(model.is_feasible(&fast.values));
            // Every optimum either came certified off the f64 tier or
            // paid the fallback — never neither.
            prop_assert!(fast.stats.certified + fast.stats.fallbacks >= 1);
        }
    }

    /// ILP: branch & bound over certified node relaxations equals an
    /// exhaustive enumeration of the boxed lattice.
    #[test]
    fn certified_ilp_equals_brute_force(model in arb_model()) {
        let solved = solve_ilp(&model, IlpConfig::default()).expect("boxed model");
        let brute = brute_force(&model);
        match brute {
            None => prop_assert_eq!(solved.0.status, SolveStatus::Infeasible),
            Some(best) => {
                prop_assert_eq!(solved.0.status, SolveStatus::Optimal);
                prop_assert_eq!(solved.0.objective, best);
                prop_assert_eq!(solved.0.objective.ceil(), best.ceil());
                prop_assert!(model.is_feasible(&solved.0.values));
            }
        }
    }
}

/// Exhaustive integer enumeration inside the box (all variables are
/// integral in `arb_model`).
fn brute_force(model: &LpModel) -> Option<Rat> {
    let n = model.num_vars();
    let mut best: Option<Rat> = None;
    let mut point = vec![0i64; n];
    loop {
        let rats: Vec<Rat> = point.iter().map(|&v| Rat::int(i128::from(v))).collect();
        if model.is_feasible(&rats) {
            let obj = model.objective().eval(&rats);
            best = Some(best.map_or(obj, |b| if obj > b { obj } else { b }));
        }
        // Odometer increment.
        let mut i = 0;
        loop {
            if i == n {
                return best;
            }
            point[i] += 1;
            if point[i] <= BOX_BOUND {
                break;
            }
            point[i] = 0;
            i += 1;
        }
    }
}

/// A model the f64 tier cannot price: the objective coefficient
/// `2⁻⁶⁰` vanishes below the float Dantzig tolerance, so the fast tier
/// claims the origin optimal — and the exact referee must refute that
/// basis (the true optimum is x = 1) and trigger the fallback.
#[test]
fn pathological_conditioning_forces_the_fallback() {
    let mut m = LpModel::new();
    let x = m.add_var("x");
    m.add_constraint(LinExpr::new().with_term(x, 1), CmpOp::Le, 1);
    m.set_objective(LinExpr::new().with_term(x, Rat::new(1, 1 << 60)));

    let exact = solve_lp_exact(&m);
    assert_eq!(exact.status, SolveStatus::Optimal);
    assert_eq!(exact.objective, Rat::new(1, 1 << 60));

    let s = solve_lp(&m);
    assert_eq!(s.status, SolveStatus::Optimal);
    assert_eq!(
        s.objective, exact.objective,
        "fallback must restore exactness"
    );
    assert_eq!(s.value(x), Rat::int(1));
    assert_eq!(s.stats.f64_solves, 1);
    assert_eq!(s.stats.certified, 0, "the refuted basis must not certify");
    assert_eq!(
        s.stats.fallbacks, 1,
        "the referee must have rejected the f64 basis"
    );
}

/// The mirror image: a well-conditioned model must come back certified
/// off the f64 tier, with no fallback.
#[test]
fn well_conditioned_model_certifies_without_fallback() {
    let mut m = LpModel::new();
    let x = m.add_var("x");
    let y = m.add_var("y");
    m.add_constraint(LinExpr::new().with_term(x, 1).with_term(y, 1), CmpOp::Le, 4);
    m.add_constraint(LinExpr::new().with_term(x, 1).with_term(y, 3), CmpOp::Le, 6);
    m.set_objective(LinExpr::new().with_term(x, 3).with_term(y, 2));
    let s = solve_lp(&m);
    assert_eq!(s.status, SolveStatus::Optimal);
    assert_eq!(s.objective, Rat::int(12));
    assert_eq!(s.stats.f64_solves, 1);
    assert_eq!(s.stats.certified, 1);
    assert_eq!(s.stats.fallbacks, 0);
    assert!(s.stats.eta_factors >= 1, "phase boundary refactorizes");
}
