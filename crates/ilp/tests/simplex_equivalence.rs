//! Differential test: the sparse revised simplex (and its warm-started
//! branch & bound) must agree **exactly** — status and objective, over
//! exact rationals — with the pre-refactor dense solver preserved in
//! `wcet_ilp::dense` (the `dense` feature, on by default).
//!
//! The dense ILP oracle below is a faithful reproduction of the old
//! branch-and-bound (bounds-as-constraints, cold dense solve per node).
//! Its *vertex* choices may differ from the new solver's among alternate
//! optima, so only status and objective are compared — those are unique.

#![cfg(feature = "dense")]

use proptest::prelude::*;
use wcet_ilp::solve_lp_dense;
use wcet_ilp::{
    solve_ilp, solve_lp, CmpOp, IlpConfig, LinExpr, LpModel, Rat, Solution, SolveContext,
    SolveStatus, VarId,
};

const BOX_BOUND: i64 = 8;

/// A random small model with `<=` / `>=` / `==` constraints (possibly
/// negative right-hand sides, so phase 1 and infeasibility are both
/// exercised), boxed so the ILP stays bounded and enumerable.
fn arb_model() -> impl Strategy<Value = LpModel> {
    let nvars = 1..=3usize;
    let ncons = 0..=4usize;
    (nvars, ncons).prop_flat_map(|(n, m)| {
        let coeffs = proptest::collection::vec(-4i64..=4, n * m);
        let ops = proptest::collection::vec(0usize..=2, m);
        let rhs = proptest::collection::vec(-6i64..=12, m);
        let obj = proptest::collection::vec(-3i64..=5, n);
        (Just(n), Just(m), coeffs, ops, rhs, obj).prop_map(|(n, m, coeffs, ops, rhs, obj)| {
            let mut model = LpModel::new();
            let vars: Vec<VarId> = (0..n).map(|i| model.add_int_var(format!("x{i}"))).collect();
            for &v in &vars {
                model.add_constraint(LinExpr::new().with_term(v, 1), CmpOp::Le, BOX_BOUND);
            }
            for c in 0..m {
                let mut e = LinExpr::new();
                for (i, &v) in vars.iter().enumerate() {
                    e.add_term(v, coeffs[c * n + i]);
                }
                let op = [CmpOp::Le, CmpOp::Ge, CmpOp::Eq][ops[c]];
                model.add_constraint(e, op, rhs[c]);
            }
            let mut o = LinExpr::new();
            for (i, &v) in vars.iter().enumerate() {
                o.add_term(v, obj[i]);
            }
            model.set_objective(o);
            model
        })
    })
}

/// The old branch & bound, verbatim in structure: a stack of extra bound
/// constraints, every node cold-solved by the dense oracle.
fn dense_ilp_oracle(model: &LpModel) -> Solution {
    type Bounds = Vec<(LinExpr, CmpOp, Rat)>;
    let mut best: Option<Solution> = None;
    let mut stack: Vec<Bounds> = vec![Vec::new()];
    while let Some(bounds) = stack.pop() {
        let mut node = model.clone();
        for (e, op, r) in &bounds {
            node.add_constraint(e.clone(), *op, *r);
        }
        let relax = solve_lp_dense(&node);
        match relax.status {
            SolveStatus::Infeasible => continue,
            SolveStatus::Unbounded => return relax,
            SolveStatus::Optimal => {}
        }
        if let Some(b) = &best {
            if relax.objective <= b.objective {
                continue;
            }
        }
        let frac = model.integer_vars().find_map(|v| {
            let val = relax.values[v.index()];
            (!val.is_integer()).then_some((v, val))
        });
        match frac {
            None => best = Some(relax),
            Some((v, val)) => {
                let e = LinExpr::new().with_term(v, Rat::ONE);
                let mut down = bounds.clone();
                down.push((e.clone(), CmpOp::Le, Rat::int(val.floor())));
                let mut up = bounds;
                up.push((e, CmpOp::Ge, Rat::int(val.ceil())));
                stack.push(down);
                stack.push(up);
            }
        }
    }
    best.unwrap_or_else(|| {
        let mut s = solve_lp_dense(model);
        s.status = SolveStatus::Infeasible;
        s.objective = Rat::ZERO;
        s.values = Vec::new();
        s
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// LP relaxation: dense and sparse agree on status and objective.
    #[test]
    fn lp_sparse_equals_dense(model in arb_model()) {
        let dense = solve_lp_dense(&model);
        let sparse = solve_lp(&model);
        prop_assert_eq!(dense.status, sparse.status);
        if dense.status == SolveStatus::Optimal {
            prop_assert_eq!(dense.objective, sparse.objective);
            // Both points must be feasible (they may be different
            // vertices of the same optimal face).
            prop_assert!(model.is_feasible(&dense.values));
            prop_assert!(model.is_feasible(&sparse.values));
        }
    }

    /// ILP: the warm-started branch & bound agrees with the dense
    /// cold-per-node oracle on status and objective.
    #[test]
    fn ilp_sparse_equals_dense(model in arb_model()) {
        let dense = dense_ilp_oracle(&model);
        let (sparse, _) = solve_ilp(&model, IlpConfig::default()).expect("boxed model");
        prop_assert_eq!(dense.status, sparse.status);
        if dense.status == SolveStatus::Optimal {
            prop_assert_eq!(dense.objective, sparse.objective);
            prop_assert!(model.is_feasible(&sparse.values));
            for v in model.integer_vars() {
                prop_assert!(sparse.values[v.index()].is_integer());
            }
        }
    }

    /// Warm-started re-solves through a `SolveContext` are bit-identical
    /// to cold solves — same status, objective AND values — because the
    /// cached phase-1 basis is objective-independent.
    #[test]
    fn warm_resolve_is_bit_identical(model in arb_model(), flip in 0i64..=6) {
        let ctx = SolveContext::new();
        let key = (0xF00D, 0xBEEF);
        // Populate the cache with the original objective...
        let seed = ctx.solve_ilp(key, &model, IlpConfig::default()).expect("boxed");
        let cold_seed = solve_ilp(&model, IlpConfig::default()).expect("boxed");
        prop_assert_eq!(&seed.0.values, &cold_seed.0.values);
        // ...then perturb only the objective and re-solve warm.
        let mut perturbed = model.clone();
        let mut o = LinExpr::new();
        for (i, (v, c)) in model.objective().terms().enumerate() {
            o.add_term(v, c + Rat::int(i128::from(flip) * (i as i128 + 1)));
        }
        perturbed.set_objective(o);
        let warm = ctx.solve_ilp(key, &perturbed, IlpConfig::default()).expect("boxed");
        let cold = solve_ilp(&perturbed, IlpConfig::default()).expect("boxed");
        prop_assert_eq!(warm.0.status, cold.0.status);
        prop_assert_eq!(warm.0.objective, cold.0.objective);
        prop_assert_eq!(&warm.0.values, &cold.0.values);
    }
}
