//! Property-based cross-checks of the LP/ILP solvers against brute force.

use proptest::prelude::*;
use wcet_ilp::{solve_ilp, solve_lp, CmpOp, IlpConfig, LinExpr, LpModel, Rat, SolveStatus, VarId};

const BOX_BOUND: i64 = 8;

/// A random small model: `n` vars in `[0, BOX_BOUND]`, `m` random `<=`
/// constraints with small coefficients, random objective.
fn arb_model() -> impl Strategy<Value = LpModel> {
    let nvars = 1..=3usize;
    let ncons = 0..=4usize;
    (nvars, ncons).prop_flat_map(|(n, m)| {
        let coeffs = proptest::collection::vec(-4i64..=4, n * m);
        let rhs = proptest::collection::vec(0i64..=12, m);
        let obj = proptest::collection::vec(-3i64..=5, n);
        (Just(n), Just(m), coeffs, rhs, obj).prop_map(|(n, m, coeffs, rhs, obj)| {
            let mut model = LpModel::new();
            let vars: Vec<VarId> = (0..n).map(|i| model.add_int_var(format!("x{i}"))).collect();
            // Box constraints keep everything bounded and enumerable.
            for &v in &vars {
                model.add_constraint(LinExpr::new().with_term(v, 1), CmpOp::Le, BOX_BOUND);
            }
            for c in 0..m {
                let mut e = LinExpr::new();
                for (i, &v) in vars.iter().enumerate() {
                    e.add_term(v, coeffs[c * n + i]);
                }
                model.add_constraint(e, CmpOp::Le, rhs[c]);
            }
            let mut o = LinExpr::new();
            for (i, &v) in vars.iter().enumerate() {
                o.add_term(v, obj[i]);
            }
            model.set_objective(o);
            model
        })
    })
}

/// Exhaustive integer-point enumeration inside the box.
fn brute_force(model: &LpModel) -> Option<Rat> {
    let n = model.num_vars();
    let mut best: Option<Rat> = None;
    let mut point = vec![0i64; n];
    loop {
        let rats: Vec<Rat> = point.iter().map(|&p| Rat::from(p)).collect();
        if model.is_feasible(&rats) {
            let obj = model.objective().eval(&rats);
            if best.is_none_or(|b| obj > b) {
                best = Some(obj);
            }
        }
        // Odometer increment.
        let mut i = 0;
        loop {
            if i == n {
                return best;
            }
            point[i] += 1;
            if point[i] <= BOX_BOUND {
                break;
            }
            point[i] = 0;
            i += 1;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// ILP optimum equals exhaustive enumeration on small boxes.
    #[test]
    fn ilp_matches_brute_force(model in arb_model()) {
        let brute = brute_force(&model);
        let (sol, _) = solve_ilp(&model, IlpConfig::default()).expect("bounded box");
        match brute {
            None => prop_assert_eq!(sol.status, SolveStatus::Infeasible),
            Some(b) => {
                prop_assert_eq!(sol.status, SolveStatus::Optimal);
                prop_assert_eq!(sol.objective, b);
                // And the reported point must itself be feasible + integral.
                prop_assert!(model.is_feasible(&sol.values));
                for v in model.integer_vars() {
                    prop_assert!(sol.values[v.index()].is_integer());
                }
            }
        }
    }

    /// The LP relaxation never under-estimates the ILP optimum (soundness
    /// direction used by IPET pruning).
    #[test]
    fn lp_bounds_ilp_from_above(model in arb_model()) {
        let lp = solve_lp(&model);
        let (ilp, _) = solve_ilp(&model, IlpConfig::default()).expect("bounded box");
        if ilp.status == SolveStatus::Optimal {
            prop_assert_eq!(lp.status, SolveStatus::Optimal);
            prop_assert!(lp.objective >= ilp.objective);
            prop_assert!(model.is_feasible(&lp.values));
        }
    }
}
