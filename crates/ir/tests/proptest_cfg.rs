//! Property tests for the CFG substrate: dominators against a brute-force
//! oracle, reverse-postorder invariants, loop-forest well-formedness, and
//! flow-fact consistency of every generated program.

use std::collections::BTreeSet;

use proptest::prelude::*;
use wcet_ir::interp::{check_loop_bounds, execute};
use wcet_ir::loops::LoopForest;
use wcet_ir::synth::{random_program, Placement, RandomParams};
use wcet_ir::{BlockId, Cfg};

/// Brute-force dominance: `a` dominates `b` iff removing `a` makes `b`
/// unreachable from the entry (or `a == b`).
fn dominates_oracle(cfg: &Cfg, a: BlockId, b: BlockId) -> bool {
    if a == b {
        return true;
    }
    if a == cfg.entry() {
        return true;
    }
    let mut seen: BTreeSet<BlockId> = BTreeSet::new();
    let mut stack = vec![cfg.entry()];
    seen.insert(cfg.entry());
    while let Some(v) = stack.pop() {
        if v == a {
            continue; // blocked: paths through `a` don't count
        }
        for &s in cfg.successors(v) {
            if seen.insert(s) {
                stack.push(s);
            }
        }
    }
    !seen.contains(&b)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn idom_matches_brute_force_dominance(seed in 0u64..3_000) {
        let p = random_program(seed, RandomParams::default(), Placement::default());
        let cfg = p.cfg();
        let idom = cfg.immediate_dominators();
        for a in cfg.block_ids() {
            for b in cfg.block_ids() {
                let fast = cfg.dominates(&idom, a, b);
                let slow = dominates_oracle(cfg, a, b);
                prop_assert_eq!(
                    fast, slow,
                    "dominates({}, {}) mismatch on seed {}", a, b, seed
                );
            }
        }
    }

    /// Differential: the worklist dominator dataflow must reproduce the
    /// preserved Cooper–Harvey–Kennedy sweep exactly (the dominator tree
    /// is unique, so any divergence is a bug in one of them).
    #[test]
    fn worklist_idom_equals_chk_sweep(seed in 0u64..10_000) {
        let p = random_program(seed, RandomParams::default(), Placement::default());
        let cfg = p.cfg();
        prop_assert_eq!(cfg.immediate_dominators(), cfg.immediate_dominators_sweep());
    }

    #[test]
    fn rpo_is_a_permutation_visiting_entry_first(seed in 0u64..3_000) {
        let p = random_program(seed, RandomParams::default(), Placement::default());
        let cfg = p.cfg();
        let rpo = cfg.reverse_postorder();
        prop_assert_eq!(rpo.len(), cfg.num_blocks());
        let set: BTreeSet<BlockId> = rpo.iter().copied().collect();
        prop_assert_eq!(set.len(), cfg.num_blocks());
        prop_assert_eq!(rpo[0], cfg.entry());
        // Forward edges (non-back) go forward in RPO.
        let back: BTreeSet<_> = cfg.back_edges().into_iter().collect();
        let pos = |b: BlockId| rpo.iter().position(|&x| x == b).expect("in rpo");
        for e in cfg.edges() {
            if !back.contains(&e) {
                prop_assert!(pos(e.from) < pos(e.to), "forward edge {} out of order", e);
            }
        }
    }

    #[test]
    fn loop_forest_is_well_formed(seed in 0u64..3_000) {
        let p = random_program(seed, RandomParams::default(), Placement::default());
        let cfg = p.cfg();
        let forest = LoopForest::analyze(cfg).expect("generated programs are reducible");
        for l in forest.loops() {
            // Header is in the body; back edges come from the body.
            prop_assert!(l.blocks.contains(&l.header));
            for e in &l.back_edges {
                prop_assert!(l.blocks.contains(&e.from));
                prop_assert_eq!(e.to, l.header);
            }
            // All entries target the header (reducibility).
            for e in &l.entry_edges {
                prop_assert!(!l.blocks.contains(&e.from));
                prop_assert_eq!(e.to, l.header);
            }
            // Parent strictly contains the child.
            if let Some(par) = l.parent {
                let parent = forest.loop_of(par);
                prop_assert!(parent.blocks.is_superset(&l.blocks));
                prop_assert!(parent.blocks.len() > l.blocks.len());
            }
        }
    }

    #[test]
    fn declared_bounds_hold_and_are_exact(seed in 0u64..3_000) {
        let p = random_program(seed, RandomParams::default(), Placement::default());
        let run = execute(&p, 3_000_000).expect("terminates");
        prop_assert_eq!(check_loop_bounds(&p, &run), None);
        // Exact counted loops: back-edge traversals == min == max per entry.
        let loops = p.loops();
        for l in loops.loops() {
            let max = p.flow().bound(l.header).expect("bounded").0;
            let min = p.flow().min_bound(l.header);
            prop_assert_eq!(min, max, "generator emits exact bounds");
            // Count entries and back edges in the trace.
            let mut entries = 0u64;
            let mut backs = 0u64;
            for w in run.block_trace.windows(2) {
                if l.entry_edges.iter().any(|e| e.from == w[0] && e.to == w[1]) {
                    entries += 1;
                }
                if l.back_edges.iter().any(|e| e.from == w[0] && e.to == w[1]) {
                    backs += 1;
                }
            }
            if p.cfg().entry() == l.header {
                entries += 1;
            }
            prop_assert_eq!(backs, entries * max, "counted loop must run exactly");
        }
    }
}
