//! Natural-loop detection and the loop-nesting forest.
//!
//! WCET analysis requires every loop to carry a bound (paper §2.1, "flow
//! facts like loop bounds"). This module finds the loops; bounds live in
//! [`FlowFacts`](crate::flow::FlowFacts).
//!
//! Only *reducible* CFGs are accepted: every cycle must be closed by a back
//! edge whose head dominates its tail. The synthetic workload generator only
//! produces such CFGs, mirroring the restriction real WCET tools place on
//! analysable code.

use std::collections::BTreeSet;
use std::fmt;

use crate::cfg::{BlockId, Cfg, Edge};

/// Identifier of a loop inside one [`LoopForest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LoopId(u32);

impl LoopId {
    /// Raw index into [`LoopForest::loops`].
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for LoopId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// One natural loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Loop {
    /// The loop header (unique entry block of the loop).
    pub header: BlockId,
    /// All blocks belonging to the loop, header included.
    pub blocks: BTreeSet<BlockId>,
    /// Back edges `latch -> header` closing this loop.
    pub back_edges: Vec<Edge>,
    /// Edges entering the loop from outside (they all target the header in a
    /// reducible CFG).
    pub entry_edges: Vec<Edge>,
    /// Edges leaving the loop (source inside, target outside).
    pub exit_edges: Vec<Edge>,
    /// Enclosing loop, if any.
    pub parent: Option<LoopId>,
    /// Nesting depth: 1 for outermost loops.
    pub depth: u32,
}

/// Error returned when the CFG is irreducible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IrreducibleError {
    /// A block that participates in a cycle not closed by a dominating back
    /// edge.
    pub witness: BlockId,
}

impl fmt::Display for IrreducibleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "control-flow graph is irreducible (cycle through {} has no dominating back edge)",
            self.witness
        )
    }
}

impl std::error::Error for IrreducibleError {}

/// The loop-nesting forest of a CFG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopForest {
    loops: Vec<Loop>,
    /// Innermost loop containing each block, if any.
    innermost: Vec<Option<LoopId>>,
}

impl LoopForest {
    /// Detects all natural loops of `cfg`.
    ///
    /// # Errors
    ///
    /// Returns [`IrreducibleError`] if removing dominator-back-edges leaves a
    /// cyclic graph, i.e. the CFG is irreducible.
    pub fn analyze(cfg: &Cfg) -> Result<LoopForest, IrreducibleError> {
        let back_edges = cfg.back_edges();

        // Reducibility: the graph minus back edges must be acyclic.
        Self::check_acyclic_without(cfg, &back_edges)?;

        // Group back edges by header; each header forms one loop.
        let mut headers: Vec<BlockId> = back_edges.iter().map(|e| e.to).collect();
        headers.sort_unstable();
        headers.dedup();

        let mut loops = Vec::new();
        for &header in &headers {
            let closing: Vec<Edge> = back_edges
                .iter()
                .copied()
                .filter(|e| e.to == header)
                .collect();
            // Natural loop body: header + all blocks that reach a latch
            // without passing through the header.
            let mut body: BTreeSet<BlockId> = BTreeSet::new();
            body.insert(header);
            let mut stack: Vec<BlockId> = Vec::new();
            for e in &closing {
                if body.insert(e.from) {
                    stack.push(e.from);
                }
            }
            while let Some(b) = stack.pop() {
                for &p in cfg.predecessors(b) {
                    if body.insert(p) {
                        stack.push(p);
                    }
                }
            }
            let entry_edges: Vec<Edge> = cfg
                .predecessors(header)
                .iter()
                .filter(|p| !body.contains(p))
                .map(|&p| Edge::new(p, header))
                .collect();
            let mut exit_edges = Vec::new();
            for &b in &body {
                for &s in cfg.successors(b) {
                    if !body.contains(&s) {
                        exit_edges.push(Edge::new(b, s));
                    }
                }
            }
            loops.push(Loop {
                header,
                blocks: body,
                back_edges: closing,
                entry_edges,
                exit_edges,
                parent: None,
                depth: 0,
            });
        }

        // Nesting: parent = smallest strict superset.
        let n_loops = loops.len();
        for i in 0..n_loops {
            let mut best: Option<usize> = None;
            for j in 0..n_loops {
                if i == j {
                    continue;
                }
                if loops[j].blocks.is_superset(&loops[i].blocks)
                    && loops[j].blocks.len() > loops[i].blocks.len()
                {
                    best = match best {
                        None => Some(j),
                        Some(cur) if loops[j].blocks.len() < loops[cur].blocks.len() => Some(j),
                        keep => keep,
                    };
                }
            }
            loops[i].parent = best.map(|j| LoopId(j as u32));
        }
        // Depths.
        for i in 0..n_loops {
            let mut d = 1;
            let mut cur = loops[i].parent;
            while let Some(p) = cur {
                d += 1;
                cur = loops[p.index()].parent;
            }
            loops[i].depth = d;
        }

        // Innermost loop per block = containing loop with max depth.
        let mut innermost: Vec<Option<LoopId>> = vec![None; cfg.num_blocks()];
        for (i, l) in loops.iter().enumerate() {
            for &b in &l.blocks {
                let slot = &mut innermost[b.index()];
                let replace = match slot {
                    None => true,
                    Some(cur) => loops[cur.index()].depth < l.depth,
                };
                if replace {
                    *slot = Some(LoopId(i as u32));
                }
            }
        }

        Ok(LoopForest { loops, innermost })
    }

    fn check_acyclic_without(cfg: &Cfg, back: &[Edge]) -> Result<(), IrreducibleError> {
        let back: BTreeSet<Edge> = back.iter().copied().collect();
        let n = cfg.num_blocks();
        // Kahn's algorithm on the forward graph.
        let mut indeg = vec![0usize; n];
        for e in cfg.edges() {
            if !back.contains(&e) {
                indeg[e.to.index()] += 1;
            }
        }
        let mut queue: Vec<BlockId> = cfg.block_ids().filter(|b| indeg[b.index()] == 0).collect();
        let mut seen = 0usize;
        while let Some(b) = queue.pop() {
            seen += 1;
            for &s in cfg.successors(b) {
                if back.contains(&Edge::new(b, s)) {
                    continue;
                }
                indeg[s.index()] -= 1;
                if indeg[s.index()] == 0 {
                    queue.push(s);
                }
            }
        }
        if seen != n {
            let witness = cfg
                .block_ids()
                .find(|b| indeg[b.index()] > 0)
                .expect("some block remains in a cycle");
            return Err(IrreducibleError { witness });
        }
        Ok(())
    }

    /// All loops, indexable by [`LoopId`].
    #[must_use]
    pub fn loops(&self) -> &[Loop] {
        &self.loops
    }

    /// The loop with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn loop_of(&self, id: LoopId) -> &Loop {
        &self.loops[id.index()]
    }

    /// The innermost loop containing `block`, if any.
    #[must_use]
    pub fn innermost(&self, block: BlockId) -> Option<LoopId> {
        self.innermost[block.index()]
    }

    /// All loops containing `block`, innermost first.
    #[must_use]
    pub fn containing(&self, block: BlockId) -> Vec<LoopId> {
        let mut out = Vec::new();
        let mut cur = self.innermost(block);
        while let Some(l) = cur {
            out.push(l);
            cur = self.loops[l.index()].parent;
        }
        out
    }

    /// The loop whose header is `block`, if any.
    #[must_use]
    pub fn headed_by(&self, block: BlockId) -> Option<LoopId> {
        self.loops
            .iter()
            .position(|l| l.header == block)
            .map(|i| LoopId(i as u32))
    }

    /// Number of loops.
    #[must_use]
    pub fn len(&self) -> usize {
        self.loops.len()
    }

    /// True if the CFG has no loops.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.loops.is_empty()
    }

    /// Ids of all loops.
    pub fn ids(&self) -> impl Iterator<Item = LoopId> {
        (0..self.loops.len() as u32).map(LoopId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CfgBuilder;
    use crate::cfg::Terminator;
    use crate::isa::{r, Cond, Instr, Operand};

    /// entry -> h1 { b1 -> h2 { b2 } } -> exit ; two nested loops.
    fn nested() -> Cfg {
        let mut cb = CfgBuilder::new();
        let entry = cb.add_block();
        let h1 = cb.add_block();
        let b1 = cb.add_block();
        let h2 = cb.add_block();
        let b2 = cb.add_block();
        let latch1 = cb.add_block();
        let exit = cb.add_block();
        cb.terminate(entry, Terminator::Jump(h1));
        cb.terminate(
            h1,
            Terminator::Branch {
                cond: Cond::Lt,
                lhs: r(1),
                rhs: Operand::Imm(8),
                taken: b1,
                not_taken: exit,
            },
        );
        cb.terminate(b1, Terminator::Jump(h2));
        cb.terminate(
            h2,
            Terminator::Branch {
                cond: Cond::Lt,
                lhs: r(2),
                rhs: Operand::Imm(4),
                taken: b2,
                not_taken: latch1,
            },
        );
        cb.push(b2, Instr::Nop);
        cb.terminate(b2, Terminator::Jump(h2));
        cb.terminate(latch1, Terminator::Jump(h1));
        cb.terminate(exit, Terminator::Return);
        cb.build(entry).expect("valid nested cfg")
    }

    #[test]
    fn finds_two_nested_loops() {
        let cfg = nested();
        let forest = LoopForest::analyze(&cfg).expect("reducible");
        assert_eq!(forest.len(), 2);
        let outer = forest
            .ids()
            .find(|&l| forest.loop_of(l).depth == 1)
            .expect("outer loop exists");
        let inner = forest
            .ids()
            .find(|&l| forest.loop_of(l).depth == 2)
            .expect("inner loop exists");
        assert_eq!(forest.loop_of(inner).parent, Some(outer));
        assert!(forest
            .loop_of(outer)
            .blocks
            .is_superset(&forest.loop_of(inner).blocks));
        assert_eq!(forest.loop_of(outer).entry_edges.len(), 1);
        assert_eq!(forest.loop_of(inner).back_edges.len(), 1);
    }

    #[test]
    fn innermost_maps_blocks_correctly() {
        let cfg = nested();
        let forest = LoopForest::analyze(&cfg).expect("reducible");
        let inner = forest
            .ids()
            .find(|&l| forest.loop_of(l).depth == 2)
            .expect("inner loop");
        let inner_header = forest.loop_of(inner).header;
        assert_eq!(forest.innermost(inner_header), Some(inner));
        assert_eq!(forest.innermost(cfg.entry()), None);
        assert_eq!(forest.containing(inner_header).len(), 2);
    }

    #[test]
    fn acyclic_cfg_has_no_loops() {
        let mut cb = CfgBuilder::new();
        let a = cb.add_block();
        let b = cb.add_block();
        cb.terminate(a, Terminator::Jump(b));
        cb.terminate(b, Terminator::Return);
        let cfg = cb.build(a).expect("valid");
        let forest = LoopForest::analyze(&cfg).expect("reducible");
        assert!(forest.is_empty());
    }

    #[test]
    fn headed_by_finds_header() {
        let cfg = nested();
        let forest = LoopForest::analyze(&cfg).expect("reducible");
        for l in forest.ids() {
            let h = forest.loop_of(l).header;
            assert_eq!(forest.headed_by(h), Some(l));
        }
        assert_eq!(forest.headed_by(cfg.entry()), None);
    }
}
