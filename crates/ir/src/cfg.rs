//! Control-flow graphs over basic blocks of [`Instr`]s.
//!
//! The CFG is the central object of static WCET analysis (paper §2.1): flow
//! analysis decorates it with loop bounds, low-level analysis computes block
//! costs over it, and IPET turns it into an integer linear program.

use std::collections::BTreeSet;
use std::fmt;

use crate::isa::{Cond, Instr, Operand, Reg};

/// Identifier of a basic block inside one [`Cfg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(u32);

impl BlockId {
    /// Creates a block id from a raw index.
    ///
    /// Mostly useful in tests; analyses should use ids handed out by
    /// [`CfgBuilder`](crate::builder::CfgBuilder).
    #[must_use]
    pub fn from_index(i: usize) -> BlockId {
        BlockId(u32::try_from(i).expect("block index exceeds u32"))
    }

    /// The raw index of this block in its CFG.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B{}", self.0)
    }
}

/// A directed CFG edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Edge {
    /// Source block.
    pub from: BlockId,
    /// Destination block.
    pub to: BlockId,
}

impl Edge {
    /// Creates the edge `from -> to`.
    #[must_use]
    pub fn new(from: BlockId, to: BlockId) -> Edge {
        Edge { from, to }
    }
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}->{}", self.from, self.to)
    }
}

/// Block terminator: how control leaves a basic block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Terminator {
    /// Unconditional jump.
    Jump(BlockId),
    /// Two-way conditional branch on `lhs <cond> rhs`.
    Branch {
        /// Condition code.
        cond: Cond,
        /// Left comparison operand.
        lhs: Reg,
        /// Right comparison operand.
        rhs: Operand,
        /// Successor when the condition holds.
        taken: BlockId,
        /// Successor when the condition does not hold.
        not_taken: BlockId,
    },
    /// Task end.
    Return,
}

impl Terminator {
    /// The successor blocks of this terminator, in `(taken, not_taken)` order
    /// for branches.
    #[must_use]
    pub fn successors(&self) -> Vec<BlockId> {
        match *self {
            Terminator::Jump(t) => vec![t],
            Terminator::Branch {
                taken, not_taken, ..
            } => vec![taken, not_taken],
            Terminator::Return => Vec::new(),
        }
    }
}

impl fmt::Display for Terminator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Terminator::Jump(t) => write!(f, "jmp {t}"),
            Terminator::Branch {
                cond,
                lhs,
                rhs,
                taken,
                not_taken,
            } => {
                write!(f, "b{cond} {lhs}, {rhs} -> {taken} else {not_taken}")
            }
            Terminator::Return => f.write_str("ret"),
        }
    }
}

/// A basic block: straight-line instructions plus one terminator.
///
/// The terminator occupies one instruction slot for code-layout purposes, so
/// a block with `n` instructions covers `n + 1` fetch addresses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasicBlock {
    instrs: Vec<Instr>,
    term: Terminator,
}

impl BasicBlock {
    /// Creates a block from its instructions and terminator.
    #[must_use]
    pub fn new(instrs: Vec<Instr>, term: Terminator) -> BasicBlock {
        BasicBlock { instrs, term }
    }

    /// The block's straight-line instructions (terminator excluded).
    #[must_use]
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// The block terminator.
    #[must_use]
    pub fn terminator(&self) -> &Terminator {
        &self.term
    }

    /// Number of fetch slots: instructions plus the terminator.
    #[must_use]
    pub fn fetch_slots(&self) -> usize {
        self.instrs.len() + 1
    }
}

/// Errors produced by [`Cfg::new`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CfgError {
    /// The CFG has no blocks.
    Empty,
    /// A terminator names a block that does not exist.
    DanglingTarget {
        /// Offending block.
        block: BlockId,
        /// The non-existent target.
        target: BlockId,
    },
    /// A conditional branch has identical taken/not-taken targets, which
    /// would create an ambiguous duplicate edge.
    DuplicateEdge {
        /// Offending block.
        block: BlockId,
    },
    /// A block is not reachable from the entry.
    Unreachable {
        /// The unreachable block.
        block: BlockId,
    },
    /// No `Return` block is reachable from the entry (the task never ends).
    NoExit,
}

impl fmt::Display for CfgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CfgError::Empty => f.write_str("control-flow graph has no blocks"),
            CfgError::DanglingTarget { block, target } => {
                write!(f, "block {block} targets non-existent block {target}")
            }
            CfgError::DuplicateEdge { block } => {
                write!(
                    f,
                    "branch in block {block} has identical taken/not-taken targets"
                )
            }
            CfgError::Unreachable { block } => {
                write!(f, "block {block} is unreachable from the entry")
            }
            CfgError::NoExit => f.write_str("no return block is reachable from the entry"),
        }
    }
}

impl std::error::Error for CfgError {}

/// A validated control-flow graph.
///
/// Invariants established at construction:
/// * every terminator target exists,
/// * every block is reachable from the entry,
/// * at least one `Return` block exists,
/// * no duplicate edges (a branch's two targets differ).
#[derive(Clone, PartialEq, Eq)]
pub struct Cfg {
    blocks: Vec<BasicBlock>,
    entry: BlockId,
    preds: Vec<Vec<BlockId>>,
    succs: Vec<Vec<BlockId>>,
    exits: Vec<BlockId>,
    /// Reverse postorder, computed once at construction — it used to be
    /// recomputed by every analysis pass (cache fixpoint, dominators,
    /// loop discovery) over the same immutable graph.
    rpo: Vec<BlockId>,
}

/// Manual `Debug`: prints exactly the defining fields. The derived
/// caches (`succs`, `rpo`) are pure functions of `blocks` + `entry`;
/// keeping them out of the rendering keeps `Debug`-based structural
/// fingerprints (`wcet-core`'s memo keys and scenario-cell ids) stable
/// across representation changes.
impl fmt::Debug for Cfg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Cfg")
            .field("blocks", &self.blocks)
            .field("entry", &self.entry)
            .field("preds", &self.preds)
            .field("exits", &self.exits)
            .finish()
    }
}

impl Cfg {
    /// Builds and validates a CFG.
    ///
    /// # Errors
    ///
    /// Returns a [`CfgError`] if any invariant listed on [`Cfg`] fails.
    pub fn new(blocks: Vec<BasicBlock>, entry: BlockId) -> Result<Cfg, CfgError> {
        if blocks.is_empty() {
            return Err(CfgError::Empty);
        }
        let n = blocks.len();
        let check = |b: BlockId, t: BlockId| -> Result<(), CfgError> {
            if t.index() >= n {
                Err(CfgError::DanglingTarget {
                    block: b,
                    target: t,
                })
            } else {
                Ok(())
            }
        };
        if entry.index() >= n {
            return Err(CfgError::DanglingTarget {
                block: entry,
                target: entry,
            });
        }
        for (i, blk) in blocks.iter().enumerate() {
            let id = BlockId::from_index(i);
            match *blk.terminator() {
                Terminator::Jump(t) => check(id, t)?,
                Terminator::Branch {
                    taken, not_taken, ..
                } => {
                    check(id, taken)?;
                    check(id, not_taken)?;
                    if taken == not_taken {
                        return Err(CfgError::DuplicateEdge { block: id });
                    }
                }
                Terminator::Return => {}
            }
        }
        // Reachability from entry.
        let mut seen = vec![false; n];
        let mut stack = vec![entry];
        seen[entry.index()] = true;
        while let Some(b) = stack.pop() {
            for s in blocks[b.index()].terminator().successors() {
                if !seen[s.index()] {
                    seen[s.index()] = true;
                    stack.push(s);
                }
            }
        }
        if let Some(i) = seen.iter().position(|&s| !s) {
            return Err(CfgError::Unreachable {
                block: BlockId::from_index(i),
            });
        }
        let exits: Vec<BlockId> = blocks
            .iter()
            .enumerate()
            .filter(|(_, b)| matches!(b.terminator(), Terminator::Return))
            .map(|(i, _)| BlockId::from_index(i))
            .collect();
        if exits.is_empty() {
            return Err(CfgError::NoExit);
        }
        let mut preds = vec![Vec::new(); n];
        let mut succs = vec![Vec::new(); n];
        for (i, blk) in blocks.iter().enumerate() {
            for s in blk.terminator().successors() {
                preds[s.index()].push(BlockId::from_index(i));
                succs[i].push(s);
            }
        }
        let rpo = compute_rpo(&succs, entry);
        Ok(Cfg {
            blocks,
            entry,
            preds,
            succs,
            exits,
            rpo,
        })
    }

    /// The entry block.
    #[must_use]
    pub fn entry(&self) -> BlockId {
        self.entry
    }

    /// All `Return` blocks.
    #[must_use]
    pub fn exits(&self) -> &[BlockId] {
        &self.exits
    }

    /// Number of blocks.
    #[must_use]
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// The block with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this CFG.
    #[must_use]
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.index()]
    }

    /// Iterator over `(BlockId, &BasicBlock)` in index order.
    pub fn iter(&self) -> impl Iterator<Item = (BlockId, &BasicBlock)> {
        self.blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (BlockId::from_index(i), b))
    }

    /// All block ids in index order.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> + '_ {
        (0..self.blocks.len()).map(BlockId::from_index)
    }

    /// Successor blocks of `id`.
    #[must_use]
    pub fn successors(&self, id: BlockId) -> &[BlockId] {
        &self.succs[id.index()]
    }

    /// Predecessor blocks of `id`.
    #[must_use]
    pub fn predecessors(&self, id: BlockId) -> &[BlockId] {
        &self.preds[id.index()]
    }

    /// All edges, in source-block order.
    #[must_use]
    pub fn edges(&self) -> Vec<Edge> {
        let mut out = Vec::new();
        for (i, blk) in self.blocks.iter().enumerate() {
            let from = BlockId::from_index(i);
            for to in blk.terminator().successors() {
                out.push(Edge::new(from, to));
            }
        }
        out
    }

    /// Blocks in reverse postorder of a depth-first search from the entry,
    /// computed once at construction.
    ///
    /// Reverse postorder visits every block before any of its successors,
    /// back edges aside, which makes data-flow fixpoints converge quickly.
    #[must_use]
    pub fn reverse_postorder(&self) -> &[BlockId] {
        &self.rpo
    }

    /// Immediate dominators, indexed by block. The entry's immediate
    /// dominator is itself.
    ///
    /// Computed as the textbook dominator dataflow —
    /// `Dom(b) = {b} ∪ ⋂ Dom(pred)`, greatest fixpoint over bitsets — on
    /// the reverse-postorder priority worklist
    /// ([`crate::fixpoint::Worklist`]): only blocks whose predecessors'
    /// dominator sets changed are re-evaluated. The block transfer reads
    /// *direct predecessors only*, which is exactly the locality the
    /// worklist's re-evaluate-on-change contract requires (the former
    /// Cooper–Harvey–Kennedy sweep walks idom *chains*, whose hidden
    /// non-local reads a changed-input worklist cannot track; it is
    /// preserved as [`Cfg::immediate_dominators_sweep`], the reference
    /// twin of the differential tests). Dominator trees are unique, so
    /// both produce identical results.
    #[must_use]
    pub fn immediate_dominators(&self) -> Vec<BlockId> {
        let n = self.blocks.len();
        let words = n.div_ceil(64);
        let entry = self.entry.index();
        let mut full = vec![u64::MAX; words];
        if !n.is_multiple_of(64) {
            full[words - 1] = (1u64 << (n % 64)) - 1;
        }
        // Greatest fixpoint: start every non-entry block at ⊤ (all blocks).
        let mut dom: Vec<Vec<u64>> = vec![full; n];
        dom[entry].fill(0);
        dom[entry][entry / 64] = 1u64 << (entry % 64);

        let mut wl = crate::fixpoint::Worklist::rpo(self);
        for &b in self.reverse_postorder().iter().skip(1) {
            wl.push(b);
        }
        let mut new = vec![0u64; words];
        while let Some(b) = wl.pop() {
            if b.index() == entry {
                continue; // the entry's set is an axiom, not an equation
            }
            crate::words::copy_into(&mut new, &dom[self.predecessors(b)[0].index()]);
            for &p in &self.predecessors(b)[1..] {
                crate::words::and_into(&mut new, &dom[p.index()]);
            }
            new[b.index() / 64] |= 1u64 << (b.index() % 64);
            if !crate::words::words_eq(&new, &dom[b.index()]) {
                crate::words::copy_into(&mut dom[b.index()], &new);
                for &s in self.successors(b) {
                    wl.push(s);
                }
            }
        }

        // Dominators of a block form a chain; the immediate dominator is
        // the deepest strict one — the chain member with the largest set.
        let sizes: Vec<u32> = dom
            .iter()
            .map(|set| set.iter().map(|w| w.count_ones()).sum())
            .collect();
        (0..n)
            .map(|b| {
                if b == entry {
                    return self.entry;
                }
                let mut best: Option<usize> = None;
                for (w, &word) in dom[b].iter().enumerate() {
                    let mut bits = word;
                    while bits != 0 {
                        let d = w * 64 + bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        if d != b && best.is_none_or(|cur| sizes[d] > sizes[cur]) {
                            best = Some(d);
                        }
                    }
                }
                BlockId::from_index(best.expect("non-entry block has a strict dominator"))
            })
            .collect()
    }

    /// The pre-worklist immediate-dominator computation: the
    /// Cooper–Harvey–Kennedy chain-intersection iterated in full
    /// reverse-postorder sweeps until stable. Kept verbatim as the
    /// reference twin for the differential property tests (dominator
    /// trees are unique, so [`Cfg::immediate_dominators`] must match it
    /// exactly).
    #[must_use]
    pub fn immediate_dominators_sweep(&self) -> Vec<BlockId> {
        let rpo = self.reverse_postorder();
        let n = self.blocks.len();
        let mut rpo_pos = vec![usize::MAX; n];
        for (pos, &b) in rpo.iter().enumerate() {
            rpo_pos[b.index()] = pos;
        }
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        idom[self.entry.index()] = Some(self.entry);
        let intersect = |idom: &[Option<BlockId>], mut a: BlockId, mut b: BlockId| -> BlockId {
            while a != b {
                while rpo_pos[a.index()] > rpo_pos[b.index()] {
                    a = idom[a.index()].expect("processed block must have idom");
                }
                while rpo_pos[b.index()] > rpo_pos[a.index()] {
                    b = idom[b.index()].expect("processed block must have idom");
                }
            }
            a
        };
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in self.predecessors(b) {
                    if idom[p.index()].is_some() {
                        new_idom = Some(match new_idom {
                            None => p,
                            Some(cur) => intersect(&idom, cur, p),
                        });
                    }
                }
                let new_idom = new_idom.expect("reachable block must have processed pred");
                if idom[b.index()] != Some(new_idom) {
                    idom[b.index()] = Some(new_idom);
                    changed = true;
                }
            }
        }
        idom.into_iter()
            .map(|d| d.expect("all blocks reachable"))
            .collect()
    }

    /// True if `a` dominates `b` (reflexive).
    #[must_use]
    pub fn dominates(&self, idom: &[BlockId], a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            let d = idom[cur.index()];
            if d == cur {
                return cur == a;
            }
            cur = d;
        }
    }

    /// The back edges of the CFG: edges `s -> h` where `h` dominates `s`.
    ///
    /// For reducible CFGs (the only kind the loop analysis accepts) these are
    /// exactly the loop-closing edges.
    #[must_use]
    pub fn back_edges(&self) -> Vec<Edge> {
        let idom = self.immediate_dominators();
        self.edges()
            .into_iter()
            .filter(|e| self.dominates(&idom, e.to, e.from))
            .collect()
    }

    /// Total number of instruction slots (incl. terminators) across blocks.
    #[must_use]
    pub fn total_fetch_slots(&self) -> usize {
        self.blocks.iter().map(BasicBlock::fetch_slots).sum()
    }

    /// The set of registers read or written anywhere in the CFG.
    #[must_use]
    pub fn used_regs(&self) -> BTreeSet<Reg> {
        let mut out = BTreeSet::new();
        for blk in &self.blocks {
            for ins in blk.instrs() {
                match *ins {
                    Instr::Alu { dst, lhs, rhs, .. } => {
                        out.insert(dst);
                        out.insert(lhs);
                        if let Operand::Reg(r) = rhs {
                            out.insert(r);
                        }
                    }
                    Instr::LoadImm { dst, .. } => {
                        out.insert(dst);
                    }
                    Instr::Load { dst, mem } => {
                        out.insert(dst);
                        if let crate::isa::MemRef::Indexed { index, .. } = mem {
                            out.insert(index);
                        }
                    }
                    Instr::Store { src, mem } => {
                        out.insert(src);
                        if let crate::isa::MemRef::Indexed { index, .. } = mem {
                            out.insert(index);
                        }
                    }
                    Instr::Yield | Instr::Nop => {}
                }
            }
            if let Terminator::Branch { lhs, rhs, .. } = *blk.terminator() {
                out.insert(lhs);
                if let Operand::Reg(r) = rhs {
                    out.insert(r);
                }
            }
        }
        out
    }
}

/// Reverse postorder of a depth-first search over `succs` from `entry`
/// (construction-time helper; every block is reachable by validation).
fn compute_rpo(succs: &[Vec<BlockId>], entry: BlockId) -> Vec<BlockId> {
    let n = succs.len();
    let mut visited = vec![false; n];
    let mut postorder = Vec::with_capacity(n);
    // Iterative DFS with an explicit "next successor" cursor per frame so
    // we can record postorder without recursion.
    let mut stack: Vec<(BlockId, usize)> = vec![(entry, 0)];
    visited[entry.index()] = true;
    while let Some(&(b, next)) = stack.last() {
        let ss = &succs[b.index()];
        if next < ss.len() {
            stack.last_mut().expect("stack non-empty").1 += 1;
            let s = ss[next];
            if !visited[s.index()] {
                visited[s.index()] = true;
                stack.push((s, 0));
            }
        } else {
            postorder.push(b);
            stack.pop();
        }
    }
    postorder.reverse();
    postorder
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::r;

    fn diamond() -> Cfg {
        // B0 -> B1 / B2 -> B3(ret)
        let b0 = BasicBlock::new(
            vec![Instr::LoadImm { dst: r(0), imm: 1 }],
            Terminator::Branch {
                cond: Cond::Eq,
                lhs: r(0),
                rhs: Operand::Imm(0),
                taken: BlockId::from_index(1),
                not_taken: BlockId::from_index(2),
            },
        );
        let b1 = BasicBlock::new(vec![Instr::Nop], Terminator::Jump(BlockId::from_index(3)));
        let b2 = BasicBlock::new(vec![Instr::Nop], Terminator::Jump(BlockId::from_index(3)));
        let b3 = BasicBlock::new(vec![], Terminator::Return);
        Cfg::new(vec![b0, b1, b2, b3], BlockId::from_index(0)).expect("valid diamond")
    }

    #[test]
    fn diamond_structure() {
        let cfg = diamond();
        assert_eq!(cfg.num_blocks(), 4);
        assert_eq!(cfg.successors(BlockId::from_index(0)).len(), 2);
        assert_eq!(cfg.predecessors(BlockId::from_index(3)).len(), 2);
        assert_eq!(cfg.exits(), &[BlockId::from_index(3)]);
        assert_eq!(cfg.edges().len(), 4);
        assert!(cfg.back_edges().is_empty());
    }

    #[test]
    fn rpo_visits_before_successors() {
        let cfg = diamond();
        let rpo = cfg.reverse_postorder();
        assert_eq!(rpo.len(), 4);
        assert_eq!(rpo[0], cfg.entry());
        let pos = |b: BlockId| rpo.iter().position(|&x| x == b).expect("all blocks in rpo");
        assert!(pos(BlockId::from_index(0)) < pos(BlockId::from_index(1)));
        assert!(pos(BlockId::from_index(1)) < pos(BlockId::from_index(3)));
        assert!(pos(BlockId::from_index(2)) < pos(BlockId::from_index(3)));
    }

    #[test]
    fn dominators_of_diamond() {
        let cfg = diamond();
        let idom = cfg.immediate_dominators();
        let b = BlockId::from_index;
        assert_eq!(idom[0], b(0));
        assert_eq!(idom[1], b(0));
        assert_eq!(idom[2], b(0));
        assert_eq!(idom[3], b(0));
        assert!(cfg.dominates(&idom, b(0), b(3)));
        assert!(!cfg.dominates(&idom, b(1), b(3)));
    }

    #[test]
    fn loop_back_edge_detected() {
        // B0 -> B1 <-> B2? No: B0 -> B1 -> B2 -> B1, B1 -> B3(ret)
        let b0 = BasicBlock::new(vec![], Terminator::Jump(BlockId::from_index(1)));
        let b1 = BasicBlock::new(
            vec![],
            Terminator::Branch {
                cond: Cond::Lt,
                lhs: r(1),
                rhs: Operand::Imm(4),
                taken: BlockId::from_index(2),
                not_taken: BlockId::from_index(3),
            },
        );
        let b2 = BasicBlock::new(vec![Instr::Nop], Terminator::Jump(BlockId::from_index(1)));
        let b3 = BasicBlock::new(vec![], Terminator::Return);
        let cfg = Cfg::new(vec![b0, b1, b2, b3], BlockId::from_index(0)).expect("valid loop");
        let back = cfg.back_edges();
        assert_eq!(
            back,
            vec![Edge::new(BlockId::from_index(2), BlockId::from_index(1))]
        );
    }

    #[test]
    fn rejects_unreachable_block() {
        let b0 = BasicBlock::new(vec![], Terminator::Return);
        let b1 = BasicBlock::new(vec![], Terminator::Return);
        let err = Cfg::new(vec![b0, b1], BlockId::from_index(0)).unwrap_err();
        assert_eq!(
            err,
            CfgError::Unreachable {
                block: BlockId::from_index(1)
            }
        );
    }

    #[test]
    fn rejects_dangling_target() {
        let b0 = BasicBlock::new(vec![], Terminator::Jump(BlockId::from_index(7)));
        let err = Cfg::new(vec![b0], BlockId::from_index(0)).unwrap_err();
        assert!(matches!(err, CfgError::DanglingTarget { .. }));
    }

    #[test]
    fn rejects_duplicate_branch_targets() {
        let b0 = BasicBlock::new(
            vec![],
            Terminator::Branch {
                cond: Cond::Eq,
                lhs: r(0),
                rhs: Operand::Imm(0),
                taken: BlockId::from_index(1),
                not_taken: BlockId::from_index(1),
            },
        );
        let b1 = BasicBlock::new(vec![], Terminator::Return);
        let err = Cfg::new(vec![b0, b1], BlockId::from_index(0)).unwrap_err();
        assert!(matches!(err, CfgError::DuplicateEdge { .. }));
    }

    #[test]
    fn rejects_no_exit() {
        let b0 = BasicBlock::new(vec![], Terminator::Jump(BlockId::from_index(0)));
        let err = Cfg::new(vec![b0], BlockId::from_index(0)).unwrap_err();
        assert_eq!(err, CfgError::NoExit);
    }
}
