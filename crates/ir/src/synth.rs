//! Seeded synthetic workload generator.
//!
//! Real WCET evaluations (and every paper the survey covers) use small
//! kernels in the style of the Mälardalen suite. This module generates
//! equivalent kernels directly as [`Program`]s, with exact flow facts and a
//! controllable memory layout, so multicore experiments can steer cache
//! conflicts by placing tasks' code/data on overlapping or disjoint sets.
//!
//! All generators are deterministic; [`random_program`] additionally takes
//! an explicit seed (C-style reproducibility — no hidden global RNG).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::builder::CfgBuilder;
use crate::cfg::{BlockId, Terminator};
use crate::flow::FlowFacts;
use crate::isa::{r, Addr, AluOp, Cond, Instr, MemRef, Operand};
use crate::program::{DataRegion, Layout, Program};

/// Placement of a generated program in the address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// Base address of the code.
    pub code_base: Addr,
    /// Base address of the first data region.
    pub data_base: Addr,
}

impl Default for Placement {
    fn default() -> Self {
        Placement {
            code_base: Addr(0x1_0000),
            data_base: Addr(0x10_0000),
        }
    }
}

impl Placement {
    /// A placement `slot`s apart from the default, so several tasks can be
    /// laid out without overlap (1 MiB code / 1 MiB data strides).
    #[must_use]
    pub fn slot(slot: u32) -> Placement {
        Placement {
            code_base: Addr(0x1_0000 + u64::from(slot) * 0x10_0000),
            data_base: Addr(0x100_0000 + u64::from(slot) * 0x10_0000),
        }
    }
}

// Register conventions used by all generators.
const CTR: [u8; 4] = [1, 2, 3, 4]; // loop counters by nesting depth
const ACC: u8 = 16;
const T0: u8 = 8;
const T1: u8 = 9;
const T2: u8 = 10;
const T3: u8 = 11;

fn imm(v: i64) -> Operand {
    Operand::Imm(v)
}

fn alu(op: AluOp, dst: u8, lhs: u8, rhs: Operand) -> Instr {
    Instr::Alu {
        op,
        dst: r(dst),
        lhs: r(lhs),
        rhs,
    }
}

fn li(dst: u8, v: i64) -> Instr {
    Instr::LoadImm {
        dst: r(dst),
        imm: v,
    }
}

/// `header` branches to `body` while `ctr < n`, else to `exit`.
fn counted_branch(ctr: u8, n: i64, body: BlockId, exit: BlockId) -> Terminator {
    Terminator::Branch {
        cond: Cond::Lt,
        lhs: r(ctr),
        rhs: imm(n),
        taken: body,
        not_taken: exit,
    }
}

/// Dense `n×n` integer matrix multiply `C = A·B` (three nested counted
/// loops; the classic data-cache workload).
///
/// # Panics
///
/// Panics if `n == 0` or internal construction fails (a bug).
#[must_use]
pub fn matmul(n: u32, place: Placement) -> Program {
    assert!(n > 0, "matrix dimension must be positive");
    let words = u64::from(n) * u64::from(n);
    let a_base = place.data_base;
    let b_base = a_base.offset(words * 8);
    let c_base = b_base.offset(words * 8);
    let elem = |base: Addr, idx_reg: u8| MemRef::Indexed {
        base,
        stride: 8,
        count: n * n,
        index: r(idx_reg),
    };

    let mut cb = CfgBuilder::new();
    let entry = cb.add_block();
    let ih = cb.add_block();
    let jinit = cb.add_block();
    let jh = cb.add_block();
    let kinit = cb.add_block();
    let kh = cb.add_block();
    let kbody = cb.add_block();
    let kdone = cb.add_block();
    let ilatch = cb.add_block();
    let exit = cb.add_block();

    let (i, j, k) = (CTR[0], CTR[1], CTR[2]);
    cb.push(entry, li(i, 0));
    cb.terminate(entry, Terminator::Jump(ih));
    cb.terminate(ih, counted_branch(i, i64::from(n), jinit, exit));
    cb.push(jinit, li(j, 0));
    cb.terminate(jinit, Terminator::Jump(jh));
    cb.terminate(jh, counted_branch(j, i64::from(n), kinit, ilatch));
    cb.push(kinit, li(k, 0));
    cb.push(kinit, li(ACC, 0));
    cb.terminate(kinit, Terminator::Jump(kh));
    cb.terminate(kh, counted_branch(k, i64::from(n), kbody, kdone));
    // T0 = i*n + k ; T1 = A[T0] ; T2 = k*n + j ; T3 = B[T2] ; ACC += T1*T3
    cb.push(kbody, alu(AluOp::Mul, T0, i, imm(i64::from(n))));
    cb.push(kbody, alu(AluOp::Add, T0, T0, r(k).into()));
    cb.push(
        kbody,
        Instr::Load {
            dst: r(T1),
            mem: elem(a_base, T0),
        },
    );
    cb.push(kbody, alu(AluOp::Mul, T2, k, imm(i64::from(n))));
    cb.push(kbody, alu(AluOp::Add, T2, T2, r(j).into()));
    cb.push(
        kbody,
        Instr::Load {
            dst: r(T3),
            mem: elem(b_base, T2),
        },
    );
    cb.push(kbody, alu(AluOp::Mul, T1, T1, r(T3).into()));
    cb.push(kbody, alu(AluOp::Add, ACC, ACC, r(T1).into()));
    cb.push(kbody, alu(AluOp::Add, k, k, imm(1)));
    cb.terminate(kbody, Terminator::Jump(kh));
    // C[i*n+j] = ACC
    cb.push(kdone, alu(AluOp::Mul, T0, i, imm(i64::from(n))));
    cb.push(kdone, alu(AluOp::Add, T0, T0, r(j).into()));
    cb.push(
        kdone,
        Instr::Store {
            src: r(ACC),
            mem: elem(c_base, T0),
        },
    );
    cb.push(kdone, alu(AluOp::Add, j, j, imm(1)));
    cb.terminate(kdone, Terminator::Jump(jh));
    cb.push(ilatch, alu(AluOp::Add, i, i, imm(1)));
    cb.terminate(ilatch, Terminator::Jump(ih));
    cb.terminate(exit, Terminator::Return);

    let cfg = cb.build(entry).expect("matmul CFG is well-formed");
    let mut facts = FlowFacts::new();
    facts.set_exact_bound(ih, u64::from(n));
    facts.set_exact_bound(jh, u64::from(n));
    facts.set_exact_bound(kh, u64::from(n));
    let mut p = Program::new(
        format!("matmul{n}"),
        cfg,
        facts,
        Layout {
            code_base: place.code_base,
        },
    )
    .expect("matmul program is well-formed")
    .with_data_region(DataRegion::new("A", a_base, words * 8))
    .with_data_region(DataRegion::new("B", b_base, words * 8))
    .with_data_region(DataRegion::new("C", c_base, words * 8));
    // Deterministic input matrices.
    for idx in 0..words {
        p = p
            .with_init_mem(a_base.offset(idx * 8), (idx as i64 * 7 + 3) % 97)
            .with_init_mem(b_base.offset(idx * 8), (idx as i64 * 13 + 5) % 89);
    }
    p
}

/// FIR filter: `taps`-tap convolution over `samples` inputs (two nested
/// loops; streaming loads with reuse across the inner loop).
///
/// # Panics
///
/// Panics if `taps == 0` or `samples == 0`.
#[must_use]
pub fn fir(taps: u32, samples: u32, place: Placement) -> Program {
    assert!(taps > 0 && samples > 0, "taps and samples must be positive");
    let x_len = u64::from(samples) + u64::from(taps);
    let c_base = place.data_base;
    let x_base = c_base.offset(u64::from(taps) * 8);
    let y_base = x_base.offset(x_len * 8);

    let mut cb = CfgBuilder::new();
    let entry = cb.add_block();
    let sh = cb.add_block();
    let tinit = cb.add_block();
    let th = cb.add_block();
    let tbody = cb.add_block();
    let tdone = cb.add_block();
    let exit = cb.add_block();

    let (s, t) = (CTR[0], CTR[1]);
    cb.push(entry, li(s, 0));
    cb.terminate(entry, Terminator::Jump(sh));
    cb.terminate(sh, counted_branch(s, i64::from(samples), tinit, exit));
    cb.push(tinit, li(t, 0));
    cb.push(tinit, li(ACC, 0));
    cb.terminate(tinit, Terminator::Jump(th));
    cb.terminate(th, counted_branch(t, i64::from(taps), tbody, tdone));
    // T0 = s + t ; T1 = x[T0] ; T2 = c[t] ; ACC += T1*T2
    cb.push(tbody, alu(AluOp::Add, T0, s, r(t).into()));
    cb.push(
        tbody,
        Instr::Load {
            dst: r(T1),
            mem: MemRef::Indexed {
                base: x_base,
                stride: 8,
                count: x_len as u32,
                index: r(T0),
            },
        },
    );
    cb.push(
        tbody,
        Instr::Load {
            dst: r(T2),
            mem: MemRef::Indexed {
                base: c_base,
                stride: 8,
                count: taps,
                index: r(t),
            },
        },
    );
    cb.push(tbody, alu(AluOp::Mul, T1, T1, r(T2).into()));
    cb.push(tbody, alu(AluOp::Add, ACC, ACC, r(T1).into()));
    cb.push(tbody, alu(AluOp::Add, t, t, imm(1)));
    cb.terminate(tbody, Terminator::Jump(th));
    cb.push(
        tdone,
        Instr::Store {
            src: r(ACC),
            mem: MemRef::Indexed {
                base: y_base,
                stride: 8,
                count: samples,
                index: r(s),
            },
        },
    );
    cb.push(tdone, alu(AluOp::Add, s, s, imm(1)));
    cb.terminate(tdone, Terminator::Jump(sh));
    cb.terminate(exit, Terminator::Return);

    let cfg = cb.build(entry).expect("fir CFG is well-formed");
    let mut facts = FlowFacts::new();
    facts.set_exact_bound(sh, u64::from(samples));
    facts.set_exact_bound(th, u64::from(taps));
    let mut p = Program::new(
        format!("fir{taps}x{samples}"),
        cfg,
        facts,
        Layout {
            code_base: place.code_base,
        },
    )
    .expect("fir program is well-formed")
    .with_data_region(DataRegion::new("coeff", c_base, u64::from(taps) * 8))
    .with_data_region(DataRegion::new("x", x_base, x_len * 8))
    .with_data_region(DataRegion::new("y", y_base, u64::from(samples) * 8));
    for i in 0..u64::from(taps) {
        p = p.with_init_mem(c_base.offset(i * 8), (i as i64 % 5) - 2);
    }
    for i in 0..x_len {
        p = p.with_init_mem(x_base.offset(i * 8), (i as i64 * 11 + 1) % 64);
    }
    p
}

/// Table-driven CRC over `len` bytes with a data-dependent branch per byte
/// (the classic "branchy + table lookup" workload).
///
/// # Panics
///
/// Panics if `len == 0`.
#[must_use]
pub fn crc(len: u32, place: Placement) -> Program {
    assert!(len > 0, "input length must be positive");
    let data_base = place.data_base;
    let table_base = data_base.offset(u64::from(len) * 8);

    let mut cb = CfgBuilder::new();
    let entry = cb.add_block();
    let header = cb.add_block();
    let body = cb.add_block();
    let odd = cb.add_block();
    let even = cb.add_block();
    let merge = cb.add_block();
    let exit = cb.add_block();

    let i = CTR[0];
    cb.push(entry, li(i, 0));
    cb.push(entry, li(ACC, 0)); // ACC = crc
    cb.terminate(entry, Terminator::Jump(header));
    cb.terminate(header, counted_branch(i, i64::from(len), body, exit));
    // T0 = data[i]; T1 = (crc ^ T0) & 0xff; T2 = table[T1]
    cb.push(
        body,
        Instr::Load {
            dst: r(T0),
            mem: MemRef::Indexed {
                base: data_base,
                stride: 8,
                count: len,
                index: r(i),
            },
        },
    );
    cb.push(body, alu(AluOp::Xor, T1, ACC, r(T0).into()));
    cb.push(body, alu(AluOp::And, T1, T1, imm(0xff)));
    cb.push(
        body,
        Instr::Load {
            dst: r(T2),
            mem: MemRef::Indexed {
                base: table_base,
                stride: 8,
                count: 256,
                index: r(T1),
            },
        },
    );
    cb.push(body, alu(AluOp::Shr, ACC, ACC, imm(8)));
    cb.push(body, alu(AluOp::Xor, ACC, ACC, r(T2).into()));
    cb.push(body, alu(AluOp::And, T3, T0, imm(1)));
    cb.terminate(
        body,
        Terminator::Branch {
            cond: Cond::Ne,
            lhs: r(T3),
            rhs: imm(0),
            taken: odd,
            not_taken: even,
        },
    );
    cb.push(odd, alu(AluOp::Xor, ACC, ACC, imm(0x1021)));
    cb.terminate(odd, Terminator::Jump(merge));
    cb.push(even, alu(AluOp::Add, ACC, ACC, imm(1)));
    cb.terminate(even, Terminator::Jump(merge));
    cb.push(merge, alu(AluOp::Add, i, i, imm(1)));
    cb.terminate(merge, Terminator::Jump(header));
    cb.terminate(exit, Terminator::Return);

    let cfg = cb.build(entry).expect("crc CFG is well-formed");
    let mut facts = FlowFacts::new();
    facts.set_exact_bound(header, u64::from(len));
    let mut p = Program::new(
        format!("crc{len}"),
        cfg,
        facts,
        Layout {
            code_base: place.code_base,
        },
    )
    .expect("crc program is well-formed")
    .with_data_region(DataRegion::new("data", data_base, u64::from(len) * 8))
    .with_data_region(DataRegion::new("table", table_base, 256 * 8));
    for idx in 0..u64::from(len) {
        p = p.with_init_mem(data_base.offset(idx * 8), (idx as i64 * 37 + 11) % 256);
    }
    for idx in 0..256u64 {
        p = p.with_init_mem(
            table_base.offset(idx * 8),
            ((idx as i64 * 5_179) ^ 0x2f) % 65_536,
        );
    }
    p
}

/// Bubble sort of `n` elements: nested loops with a data-dependent swap
/// branch — the canonical "path explosion" workload.
///
/// # Panics
///
/// Panics if `n < 2`.
#[must_use]
pub fn bsort(n: u32, place: Placement) -> Program {
    assert!(n >= 2, "need at least two elements to sort");
    let arr = place.data_base;
    let elem = |idx_reg: u8| MemRef::Indexed {
        base: arr,
        stride: 8,
        count: n,
        index: r(idx_reg),
    };

    let mut cb = CfgBuilder::new();
    let entry = cb.add_block();
    let ih = cb.add_block();
    let jinit = cb.add_block();
    let jh = cb.add_block();
    let jbody = cb.add_block();
    let swap = cb.add_block();
    let noswap = cb.add_block();
    let jlatch = cb.add_block();
    let ilatch = cb.add_block();
    let exit = cb.add_block();

    let (i, j) = (CTR[0], CTR[1]);
    let last = i64::from(n) - 1;
    cb.push(entry, li(i, 0));
    cb.terminate(entry, Terminator::Jump(ih));
    cb.terminate(ih, counted_branch(i, last, jinit, exit));
    cb.push(jinit, li(j, 0));
    cb.terminate(jinit, Terminator::Jump(jh));
    cb.terminate(jh, counted_branch(j, last, jbody, ilatch));
    // T0 = arr[j]; T2 = j+1; T1 = arr[j+1]; if T0 > T1 swap
    cb.push(
        jbody,
        Instr::Load {
            dst: r(T0),
            mem: elem(j),
        },
    );
    cb.push(jbody, alu(AluOp::Add, T2, j, imm(1)));
    cb.push(
        jbody,
        Instr::Load {
            dst: r(T1),
            mem: elem(T2),
        },
    );
    cb.terminate(
        jbody,
        Terminator::Branch {
            cond: Cond::Lt,
            lhs: r(T1),
            rhs: r(T0).into(),
            taken: swap,
            not_taken: noswap,
        },
    );
    cb.push(
        swap,
        Instr::Store {
            src: r(T1),
            mem: elem(j),
        },
    );
    cb.push(
        swap,
        Instr::Store {
            src: r(T0),
            mem: elem(T2),
        },
    );
    cb.terminate(swap, Terminator::Jump(jlatch));
    cb.push(noswap, Instr::Nop);
    cb.terminate(noswap, Terminator::Jump(jlatch));
    cb.push(jlatch, alu(AluOp::Add, j, j, imm(1)));
    cb.terminate(jlatch, Terminator::Jump(jh));
    cb.push(ilatch, alu(AluOp::Add, i, i, imm(1)));
    cb.terminate(ilatch, Terminator::Jump(ih));
    cb.terminate(exit, Terminator::Return);

    let cfg = cb.build(entry).expect("bsort CFG is well-formed");
    let mut facts = FlowFacts::new();
    facts.set_exact_bound(ih, (n - 1) as u64);
    facts.set_exact_bound(jh, (n - 1) as u64);
    let mut p = Program::new(
        format!("bsort{n}"),
        cfg,
        facts,
        Layout {
            code_base: place.code_base,
        },
    )
    .expect("bsort program is well-formed")
    .with_data_region(DataRegion::new("arr", arr, u64::from(n) * 8));
    for idx in 0..u64::from(n) {
        // Reverse-sorted input: worst case for bubble sort.
        p = p.with_init_mem(arr.offset(idx * 8), i64::from(n) - idx as i64);
    }
    p
}

/// A loop around a `cases`-way switch whose leaves carry `pad` no-ops each:
/// large instruction footprint, many short paths (nsichneu-style).
///
/// # Panics
///
/// Panics if `cases == 0` or `iters == 0`.
#[must_use]
pub fn switchy(cases: u32, iters: u32, pad: u32, place: Placement) -> Program {
    assert!(cases > 0 && iters > 0, "cases and iters must be positive");
    let mut cb = CfgBuilder::new();
    let entry = cb.add_block();
    let header = cb.add_block();
    let sel = cb.add_block();
    let latch = cb.add_block();
    let exit = cb.add_block();
    let tests: Vec<BlockId> = (0..cases).map(|_| cb.add_block()).collect();
    let leaves: Vec<BlockId> = (0..cases).map(|_| cb.add_block()).collect();

    let i = CTR[0];
    cb.push(entry, li(i, 0));
    cb.push(entry, li(ACC, 0));
    cb.terminate(entry, Terminator::Jump(header));
    cb.terminate(header, counted_branch(i, i64::from(iters), sel, exit));
    // T0 = (i*7 + 3) % cases
    cb.push(sel, alu(AluOp::Mul, T0, i, imm(7)));
    cb.push(sel, alu(AluOp::Add, T0, T0, imm(3)));
    cb.push(sel, alu(AluOp::Rem, T0, T0, imm(i64::from(cases))));
    cb.terminate(sel, Terminator::Jump(tests[0]));
    for c in 0..cases as usize {
        // The selector is always in range, so the final default edge (to the
        // latch) is never taken at run time; it still keeps the CFG valid.
        let next = if c + 1 < cases as usize {
            tests[c + 1]
        } else {
            latch
        };
        cb.terminate(
            tests[c],
            Terminator::Branch {
                cond: Cond::Eq,
                lhs: r(T0),
                rhs: imm(c as i64),
                taken: leaves[c],
                not_taken: next,
            },
        );
    }
    for (c, &leaf) in leaves.iter().enumerate() {
        for _ in 0..pad {
            cb.push(leaf, Instr::Nop);
        }
        cb.push(leaf, alu(AluOp::Add, ACC, ACC, imm(c as i64 + 1)));
        cb.terminate(leaf, Terminator::Jump(latch));
    }
    cb.push(latch, alu(AluOp::Add, i, i, imm(1)));
    cb.terminate(latch, Terminator::Jump(header));
    cb.terminate(exit, Terminator::Return);

    let cfg = cb.build(entry).expect("switchy CFG is well-formed");
    let mut facts = FlowFacts::new();
    facts.set_exact_bound(header, u64::from(iters));
    Program::new(
        format!("switchy{cases}x{iters}"),
        cfg,
        facts,
        Layout {
            code_base: place.code_base,
        },
    )
    .expect("switchy program is well-formed")
}

/// A strictly single-path kernel: one counted loop over a straight chain of
/// `chain` blocks, each doing ALU work plus one static load.
///
/// Single-path code is the case where static bus scheduling (TDMA, paper
/// §5.2) is actually analysable, as argued via the single-path programming
/// paradigm \[28\].
///
/// # Panics
///
/// Panics if `chain == 0` or `iters == 0`.
#[must_use]
pub fn single_path(chain: u32, iters: u32, place: Placement) -> Program {
    assert!(chain > 0 && iters > 0, "chain and iters must be positive");
    let region = place.data_base;
    let mut cb = CfgBuilder::new();
    let entry = cb.add_block();
    let header = cb.add_block();
    let chain_blocks: Vec<BlockId> = (0..chain).map(|_| cb.add_block()).collect();
    let latch = cb.add_block();
    let exit = cb.add_block();

    let i = CTR[0];
    cb.push(entry, li(i, 0));
    cb.push(entry, li(ACC, 0));
    cb.terminate(entry, Terminator::Jump(header));
    cb.terminate(
        header,
        counted_branch(i, i64::from(iters), chain_blocks[0], exit),
    );
    for (c, &blk) in chain_blocks.iter().enumerate() {
        cb.push(
            blk,
            Instr::Load {
                dst: r(T0),
                mem: MemRef::Static(region.offset((c as u64 % 16) * 8)),
            },
        );
        cb.push(blk, alu(AluOp::Add, ACC, ACC, r(T0).into()));
        cb.push(blk, alu(AluOp::Mul, ACC, ACC, imm(3)));
        let next = if c + 1 < chain_blocks.len() {
            chain_blocks[c + 1]
        } else {
            latch
        };
        cb.terminate(blk, Terminator::Jump(next));
    }
    cb.push(latch, alu(AluOp::Add, i, i, imm(1)));
    cb.terminate(latch, Terminator::Jump(header));
    cb.terminate(exit, Terminator::Return);

    let cfg = cb.build(entry).expect("single_path CFG is well-formed");
    let mut facts = FlowFacts::new();
    facts.set_exact_bound(header, u64::from(iters));
    let mut p = Program::new(
        format!("spath{chain}x{iters}"),
        cfg,
        facts,
        Layout {
            code_base: place.code_base,
        },
    )
    .expect("single_path program is well-formed")
    .with_data_region(DataRegion::new("buf", region, 16 * 8));
    for idx in 0..16u64 {
        p = p.with_init_mem(region.offset(idx * 8), idx as i64 + 1);
    }
    p
}

/// Serial pointer chase through a ring of `len` cells, `rounds` hops:
/// latency-bound, every load depends on the previous one (the bus/memory
/// stress workload). Cells are 8 bytes apart, so several hops share a
/// cache line; use [`pointer_chase_stride`] with a line-sized stride for a
/// miss-every-hop variant.
///
/// # Panics
///
/// Panics if `len < 2` or `rounds == 0`.
#[must_use]
pub fn pointer_chase(len: u32, rounds: u32, place: Placement) -> Program {
    pointer_chase_stride(len, rounds, 8, place)
}

/// [`pointer_chase`] with an explicit cell stride in bytes (e.g. the cache
/// line size, so every hop touches a fresh line).
///
/// # Panics
///
/// Panics if `len < 2`, `rounds == 0` or `stride == 0`.
#[must_use]
pub fn pointer_chase_stride(len: u32, rounds: u32, stride: u32, place: Placement) -> Program {
    assert!(len >= 2 && rounds > 0, "need len >= 2 and rounds >= 1");
    assert!(stride > 0, "stride must be non-zero");
    let ring = place.data_base;
    let mut cb = CfgBuilder::new();
    let entry = cb.add_block();
    let header = cb.add_block();
    let body = cb.add_block();
    let exit = cb.add_block();

    let i = CTR[0];
    cb.push(entry, li(i, 0));
    cb.push(entry, li(ACC, 0)); // ACC = current node index
    cb.terminate(entry, Terminator::Jump(header));
    cb.terminate(header, counted_branch(i, i64::from(rounds), body, exit));
    cb.push(
        body,
        Instr::Load {
            dst: r(ACC),
            mem: MemRef::Indexed {
                base: ring,
                stride,
                count: len,
                index: r(ACC),
            },
        },
    );
    cb.push(body, alu(AluOp::Add, i, i, imm(1)));
    cb.terminate(body, Terminator::Jump(header));
    cb.terminate(exit, Terminator::Return);

    let cfg = cb.build(entry).expect("pointer_chase CFG is well-formed");
    let mut facts = FlowFacts::new();
    facts.set_exact_bound(header, u64::from(rounds));
    let mut p = Program::new(
        format!("chase{len}x{rounds}"),
        cfg,
        facts,
        Layout {
            code_base: place.code_base,
        },
    )
    .expect("pointer_chase program is well-formed")
    .with_data_region(DataRegion::new(
        "ring",
        ring,
        u64::from(len) * u64::from(stride),
    ));
    // Ring permutation with a stride coprime to len (len odd-ish handling:
    // use the largest odd step < len, which is coprime for power-of-two len;
    // for general len fall back to step 1).
    let step = if len.is_multiple_of(2) {
        (len - 1) as u64
    } else {
        1
    };
    for idx in 0..u64::from(len) {
        p = p.with_init_mem(
            ring.offset(idx * u64::from(stride)),
            ((idx + step) % u64::from(len)) as i64,
        );
    }
    p
}

/// Two consecutive diamonds steered by the *same* precomputed condition:
/// the canonical infeasible-path example. Flow facts declare the
/// cross-diamond mixed paths infeasible, which IPET exploits (paper §2.1).
///
/// `heavy` controls how much slower the "expensive" arms are.
///
/// # Panics
///
/// Panics if construction fails (a bug).
#[must_use]
pub fn twin_diamonds(heavy: u32, place: Placement) -> Program {
    let mut cb = CfgBuilder::new();
    let entry = cb.add_block();
    let d1t = cb.add_block();
    let d1f = cb.add_block();
    let mid = cb.add_block();
    let d2t = cb.add_block();
    let d2f = cb.add_block();
    let exit = cb.add_block();

    // Condition: parity of an init register (r20), fixed for the whole run.
    let cond_reg = 20u8;
    cb.push(entry, alu(AluOp::And, T0, cond_reg, imm(1)));
    cb.terminate(
        entry,
        Terminator::Branch {
            cond: Cond::Ne,
            lhs: r(T0),
            rhs: imm(0),
            taken: d1t,
            not_taken: d1f,
        },
    );
    for _ in 0..heavy {
        cb.push(d1t, alu(AluOp::Mul, ACC, ACC, imm(3)));
    }
    cb.terminate(d1t, Terminator::Jump(mid));
    cb.push(d1f, Instr::Nop);
    cb.terminate(d1f, Terminator::Jump(mid));
    cb.push(mid, alu(AluOp::Add, ACC, ACC, imm(1)));
    cb.terminate(
        mid,
        Terminator::Branch {
            cond: Cond::Ne,
            lhs: r(T0),
            rhs: imm(0),
            taken: d2t,
            not_taken: d2f,
        },
    );
    cb.push(d2t, Instr::Nop);
    cb.terminate(d2t, Terminator::Jump(exit));
    for _ in 0..heavy {
        cb.push(d2f, alu(AluOp::Mul, ACC, ACC, imm(5)));
    }
    cb.terminate(d2f, Terminator::Jump(exit));
    cb.terminate(exit, Terminator::Return);

    let cfg = cb.build(entry).expect("twin_diamonds CFG is well-formed");
    let mut facts = FlowFacts::new();
    // taken(d1) implies taken(d2): the mixed combinations are infeasible.
    facts.add_infeasible_pair(
        crate::cfg::Edge::new(entry, d1t),
        crate::cfg::Edge::new(mid, d2f),
    );
    facts.add_infeasible_pair(
        crate::cfg::Edge::new(entry, d1f),
        crate::cfg::Edge::new(mid, d2t),
    );
    Program::new(
        format!("twin{heavy}"),
        cfg,
        facts,
        Layout {
            code_base: place.code_base,
        },
    )
    .expect("twin_diamonds program is well-formed")
}

/// Two sequential loop nests with disjoint hot tables: phase 1 sweeps
/// table `A` `iters` times, phase 2 sweeps table `B` `iters` times.
///
/// The canonical workload where *dynamic* cache locking beats static
/// locking (Suhendra & Mitra, paper §4.2): each phase's hot set fits the
/// lockable ways, but their union does not.
///
/// # Panics
///
/// Panics if `words == 0` or `iters == 0`.
#[must_use]
pub fn two_phase(words: u32, iters: u32, place: Placement) -> Program {
    assert!(words > 0 && iters > 0, "words and iters must be positive");
    let a_base = place.data_base;
    let b_base = a_base.offset(u64::from(words) * 8);

    fn phase(cb: &mut CfgBuilder, table: Addr, words: u32, iters: u32) -> (BlockId, BlockId) {
        let pre = cb.add_block();
        let ih = cb.add_block();
        let jinit = cb.add_block();
        let jh = cb.add_block();
        let jbody = cb.add_block();
        let jlatch = cb.add_block();
        let ilatch = cb.add_block();
        let after = cb.add_block();
        let (i, j) = (CTR[0], CTR[1]);
        cb.push(pre, li(i, 0));
        cb.terminate(pre, Terminator::Jump(ih));
        cb.terminate(ih, counted_branch(i, i64::from(iters), jinit, after));
        cb.push(jinit, li(j, 0));
        cb.terminate(jinit, Terminator::Jump(jh));
        cb.terminate(jh, counted_branch(j, i64::from(words), jbody, ilatch));
        // Exact per-word loads: j indexes the table, one word per iteration.
        cb.push(
            jbody,
            Instr::Load {
                dst: r(T0),
                mem: MemRef::Indexed {
                    base: table,
                    stride: 8,
                    count: words,
                    index: r(j),
                },
            },
        );
        cb.push(jbody, alu(AluOp::Add, ACC, ACC, r(T0).into()));
        cb.terminate(jbody, Terminator::Jump(jlatch));
        cb.push(jlatch, alu(AluOp::Add, j, j, imm(1)));
        cb.terminate(jlatch, Terminator::Jump(jh));
        cb.push(ilatch, alu(AluOp::Add, i, i, imm(1)));
        cb.terminate(ilatch, Terminator::Jump(ih));
        (pre, after)
    }
    let mut cb = CfgBuilder::new();
    let entry = cb.add_block();
    let exit = cb.add_block();
    cb.push(entry, li(ACC, 0));
    let (p1, a1) = phase(&mut cb, a_base, words, iters);
    let (p2, a2) = phase(&mut cb, b_base, words, iters);
    cb.terminate(entry, Terminator::Jump(p1));
    cb.terminate(a1, Terminator::Jump(p2));
    cb.terminate(a2, Terminator::Jump(exit));
    cb.terminate(exit, Terminator::Return);

    let cfg = cb.build(entry).expect("two_phase CFG is well-formed");
    let mut facts = FlowFacts::new();
    // Headers: phase() allocates ih at +1 and jh at +3 from its pre block.
    // Identify loop headers generically instead of hard-coding ids.
    let loops = crate::loops::LoopForest::analyze(&cfg).expect("reducible");
    for l in loops.loops() {
        let bound = if l.parent.is_some() {
            u64::from(words)
        } else {
            u64::from(iters)
        };
        facts.set_exact_bound(l.header, bound);
    }
    let mut p = Program::new(
        format!("twophase{words}x{iters}"),
        cfg,
        facts,
        Layout {
            code_base: place.code_base,
        },
    )
    .expect("two_phase program is well-formed")
    .with_data_region(DataRegion::new("A", a_base, u64::from(words) * 8))
    .with_data_region(DataRegion::new("B", b_base, u64::from(words) * 8));
    for idx in 0..u64::from(words) {
        p = p
            .with_init_mem(a_base.offset(idx * 8), idx as i64 % 17)
            .with_init_mem(b_base.offset(idx * 8), (idx as i64 * 3) % 23);
    }
    p
}

/// Instantiates a generator from the compact kernel spec used by
/// declarative scenario files: `NAME:ARGS` with `x`-separated integer
/// arguments.
///
/// | spec | generator |
/// |---|---|
/// | `matmul:N` | [`matmul`] |
/// | `fir:TAPSxSAMPLES` | [`fir`] |
/// | `crc:LEN` | [`crc`] |
/// | `bsort:N` | [`bsort`] |
/// | `switchy:CASESxITERSxPAD` | [`switchy`] |
/// | `spath:CHAINxITERS` | [`single_path`] |
/// | `chase:LENxROUNDS[xSTRIDE]` | [`pointer_chase`] / [`pointer_chase_stride`] |
/// | `twin:HEAVY` | [`twin_diamonds`] |
/// | `twophase:WORDSxITERS` | [`two_phase`] |
/// | `rand:SEED` | [`random_program`] with [`RandomParams::default`] |
///
/// # Errors
///
/// Returns a description of the problem if the name is unknown, the
/// argument list does not match the generator's arity, or an argument
/// is outside the generator's domain (specs are user input; this
/// parser never panics).
pub fn parse_kernel(spec: &str, place: Placement) -> Result<Program, String> {
    let (name, args) = match spec.split_once(':') {
        Some((name, args)) => (name.trim(), args.trim()),
        None => (spec.trim(), ""),
    };
    let args: Vec<u32> = if args.is_empty() {
        Vec::new()
    } else {
        args.split('x')
            .map(|a| a.trim().parse::<u32>())
            .collect::<Result<_, _>>()
            .map_err(|e| format!("kernel spec {spec:?}: bad argument ({e})"))?
    };
    let arity = |n: usize| -> Result<(), String> {
        if args.len() == n {
            Ok(())
        } else {
            Err(format!(
                "kernel spec {spec:?}: {name} takes {n} x-separated argument(s), got {}",
                args.len()
            ))
        }
    };
    // Generator preconditions, checked here so a bad spec value is a
    // diagnostic rather than a panic inside the generator's assert.
    let require = |ok: bool, why: &str| -> Result<(), String> {
        if ok {
            Ok(())
        } else {
            Err(format!("kernel spec {spec:?}: {why}"))
        }
    };
    match name {
        "matmul" => {
            arity(1)?;
            require(args[0] > 0, "matrix dimension must be positive")?;
            Ok(matmul(args[0], place))
        }
        "fir" => {
            arity(2)?;
            require(
                args[0] > 0 && args[1] > 0,
                "taps and samples must be positive",
            )?;
            Ok(fir(args[0], args[1], place))
        }
        "crc" => {
            arity(1)?;
            require(args[0] > 0, "input length must be positive")?;
            Ok(crc(args[0], place))
        }
        "bsort" => {
            arity(1)?;
            require(args[0] >= 2, "need at least two elements to sort")?;
            Ok(bsort(args[0], place))
        }
        "switchy" => {
            arity(3)?;
            require(
                args[0] > 0 && args[1] > 0,
                "cases and iters must be positive",
            )?;
            Ok(switchy(args[0], args[1], args[2], place))
        }
        "spath" => {
            arity(2)?;
            require(
                args[0] > 0 && args[1] > 0,
                "chain and iters must be positive",
            )?;
            Ok(single_path(args[0], args[1], place))
        }
        "chase" => {
            let stride = match args.len() {
                2 => 8,
                3 => args[2],
                n => {
                    return Err(format!(
                        "kernel spec {spec:?}: chase takes 2 or 3 x-separated arguments, got {n}"
                    ))
                }
            };
            require(
                args[0] >= 2 && args[1] > 0 && stride > 0,
                "need len >= 2, rounds >= 1 and a non-zero stride",
            )?;
            Ok(pointer_chase_stride(args[0], args[1], stride, place))
        }
        "twin" => {
            arity(1)?;
            Ok(twin_diamonds(args[0], place))
        }
        "twophase" => {
            arity(2)?;
            require(
                args[0] > 0 && args[1] > 0,
                "words and iters must be positive",
            )?;
            Ok(two_phase(args[0], args[1], place))
        }
        "rand" => {
            arity(1)?;
            Ok(random_program(
                u64::from(args[0]),
                RandomParams::default(),
                place,
            ))
        }
        _ => Err(format!("kernel spec {spec:?}: unknown kernel {name:?}")),
    }
}

/// Parameters for [`random_program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomParams {
    /// Maximum structural nesting depth (if/loop).
    pub max_depth: u32,
    /// Maximum loop bound per loop.
    pub max_loop_bound: u64,
    /// Maximum straight-line instructions per work block.
    pub max_block_len: u32,
    /// Number of 8-byte words in the program's data region.
    pub data_words: u32,
    /// Rough cap on the number of statements generated.
    pub max_stmts: u32,
}

impl Default for RandomParams {
    fn default() -> Self {
        RandomParams {
            max_depth: 3,
            max_loop_bound: 6,
            max_block_len: 5,
            data_words: 64,
            max_stmts: 24,
        }
    }
}

/// Structured random program generator: seq/if/loop/work/mem statements,
/// guaranteed reducible, with exact loop bounds.
///
/// Branch conditions are derived from loop counters and memory contents, so
/// different seeds exercise genuinely different paths. Used heavily by the
/// property-based soundness tests.
///
/// # Panics
///
/// Panics if internal construction fails (a bug).
#[must_use]
pub fn random_program(seed: u64, params: RandomParams, place: Placement) -> Program {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut gen = RandomGen {
        cb: CfgBuilder::new(),
        facts: FlowFacts::new(),
        params,
        region: place.data_base,
        stmts: 0,
        rng: &mut rng,
    };
    let entry = gen.cb.add_block();
    let exit = gen.cb.add_block();
    gen.cb.push(entry, li(ACC, 0));
    gen.cb.push(entry, li(T3, 0));
    let (first, last) = gen.gen_seq(0);
    gen.cb.terminate(entry, Terminator::Jump(first));
    gen.cb.terminate(last, Terminator::Jump(exit));
    gen.cb.terminate(exit, Terminator::Return);
    let RandomGen { cb, facts, .. } = gen;
    let cfg = cb
        .build(entry)
        .expect("random CFG is well-formed by construction");
    let mut p = Program::new(
        format!("rand{seed:#x}"),
        cfg,
        facts,
        Layout {
            code_base: place.code_base,
        },
    )
    .expect("random program is well-formed by construction")
    .with_data_region(DataRegion::new(
        "data",
        place.data_base,
        u64::from(params.data_words) * 8,
    ));
    let mut vrng = StdRng::seed_from_u64(seed ^ 0xdead_beef);
    for idx in 0..u64::from(params.data_words) {
        p = p.with_init_mem(place.data_base.offset(idx * 8), vrng.gen_range(-64..64));
    }
    p
}

struct RandomGen<'a> {
    cb: CfgBuilder,
    facts: FlowFacts,
    params: RandomParams,
    region: Addr,
    stmts: u32,
    rng: &'a mut StdRng,
}

impl RandomGen<'_> {
    /// Generates a hammock (single entry, single exit, both un-terminated at
    /// the exit side) and returns `(entry, exit)` blocks.
    fn gen_seq(&mut self, depth: u32) -> (BlockId, BlockId) {
        let n = self.rng.gen_range(1..=3);
        let mut first = None;
        let mut prev: Option<BlockId> = None;
        for _ in 0..n {
            let (s_in, s_out) = self.gen_stmt(depth);
            if let Some(p) = prev {
                self.cb.terminate(p, Terminator::Jump(s_in));
            }
            first.get_or_insert(s_in);
            prev = Some(s_out);
        }
        (
            first.expect("at least one statement"),
            prev.expect("at least one statement"),
        )
    }

    fn gen_stmt(&mut self, depth: u32) -> (BlockId, BlockId) {
        self.stmts += 1;
        let budget_left = self.stmts < self.params.max_stmts;
        let choice = if depth >= self.params.max_depth || !budget_left {
            0 // leaf only
        } else {
            self.rng.gen_range(0..4)
        };
        match choice {
            1 => self.gen_if(depth),
            // Each loop nesting level needs its own counter register; deeper
            // loops would clobber an ancestor's counter and never terminate.
            2 if (depth as usize) < CTR.len() => self.gen_loop(depth),
            _ => self.gen_work(),
        }
    }

    fn gen_work(&mut self) -> (BlockId, BlockId) {
        let b = self.cb.add_block();
        let len = self.rng.gen_range(1..=self.params.max_block_len);
        for _ in 0..len {
            let kind = self.rng.gen_range(0..5);
            match kind {
                0 => {
                    let ops = [
                        AluOp::Add,
                        AluOp::Sub,
                        AluOp::Xor,
                        AluOp::And,
                        AluOp::Or,
                        AluOp::Mul,
                    ];
                    let op = ops[self.rng.gen_range(0..ops.len())];
                    self.cb
                        .push(b, alu(op, ACC, ACC, imm(self.rng.gen_range(1..16))));
                }
                1 => {
                    let idx = self.rng.gen_range(0..self.params.data_words);
                    self.cb.push(
                        b,
                        Instr::Load {
                            dst: r(T0),
                            mem: MemRef::Static(self.region.offset(u64::from(idx) * 8)),
                        },
                    );
                    self.cb.push(b, alu(AluOp::Add, ACC, ACC, r(T0).into()));
                }
                2 => {
                    let idx = self.rng.gen_range(0..self.params.data_words);
                    self.cb.push(
                        b,
                        Instr::Store {
                            src: r(ACC),
                            mem: MemRef::Static(self.region.offset(u64::from(idx) * 8)),
                        },
                    );
                }
                3 => {
                    // Indexed access over a random sub-table.
                    let count = self.rng.gen_range(2..=self.params.data_words.max(2));
                    self.cb.push(
                        b,
                        Instr::Load {
                            dst: r(T1),
                            mem: MemRef::Indexed {
                                base: self.region,
                                stride: 8,
                                count,
                                index: r(ACC),
                            },
                        },
                    );
                    self.cb.push(b, alu(AluOp::Xor, ACC, ACC, r(T1).into()));
                }
                _ => {
                    self.cb.push(b, Instr::Nop);
                }
            }
        }
        (b, b)
    }

    fn gen_if(&mut self, depth: u32) -> (BlockId, BlockId) {
        let head = self.cb.add_block();
        let join = self.cb.add_block();
        // Condition on ACC parity mixed with a random mask — data dependent.
        let mask = self.rng.gen_range(1..8);
        self.cb.push(head, alu(AluOp::And, T2, ACC, imm(mask)));
        let (t_in, t_out) = self.gen_seq(depth + 1);
        let (f_in, f_out) = self.gen_seq(depth + 1);
        self.cb.terminate(
            head,
            Terminator::Branch {
                cond: Cond::Ne,
                lhs: r(T2),
                rhs: imm(0),
                taken: t_in,
                not_taken: f_in,
            },
        );
        self.cb.terminate(t_out, Terminator::Jump(join));
        self.cb.terminate(f_out, Terminator::Jump(join));
        self.cb.push(join, Instr::Nop);
        (head, join)
    }

    fn gen_loop(&mut self, depth: u32) -> (BlockId, BlockId) {
        let ctr = CTR[depth as usize];
        let bound = self.rng.gen_range(1..=self.params.max_loop_bound);
        let pre = self.cb.add_block();
        let header = self.cb.add_block();
        let after = self.cb.add_block();
        self.cb.push(pre, li(ctr, 0));
        self.cb.terminate(pre, Terminator::Jump(header));
        let (b_in, b_out) = self.gen_seq(depth + 1);
        let latch = self.cb.add_block();
        self.cb.terminate(b_out, Terminator::Jump(latch));
        self.cb.push(latch, alu(AluOp::Add, ctr, ctr, imm(1)));
        self.cb.terminate(latch, Terminator::Jump(header));
        self.cb.terminate(
            header,
            counted_branch(ctr, i64::try_from(bound).expect("small bound"), b_in, after),
        );
        self.facts.set_exact_bound(header, bound);
        self.cb.push(after, Instr::Nop);
        (pre, after)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{check_loop_bounds, execute};

    fn runs_ok(p: &Program) {
        let res = execute(p, 5_000_000).expect("terminates");
        assert_eq!(
            check_loop_bounds(p, &res),
            None,
            "{} violates bounds",
            p.name()
        );
    }

    #[test]
    fn matmul_computes_product() {
        let p = matmul(3, Placement::default());
        let res = execute(&p, 1_000_000).expect("terminates");
        // C[0][0] = sum_k A[0][k] * B[k][0]
        let a = |i: u64| (i as i64 * 7 + 3) % 97;
        let b = |i: u64| (i as i64 * 13 + 5) % 89;
        let expected: i64 = (0..3u64).map(|k| a(k) * b(k * 3)).sum();
        let c_base = p.data_regions()[2].base;
        let stored = res
            .accesses
            .iter()
            .any(|acc| acc.addr == c_base && acc.kind == crate::program::AccessKind::Store);
        assert!(stored, "C[0][0] must be written");
        // Re-execute interpreter state to read memory: easiest is to check
        // the final ACC path indirectly via block counts.
        assert_eq!(res.count(crate::cfg::BlockId::from_index(6)), 27); // kbody runs n^3
        let _ = expected;
        runs_ok(&p);
    }

    #[test]
    fn all_kernels_terminate_and_respect_bounds() {
        let pl = Placement::default();
        runs_ok(&matmul(4, pl));
        runs_ok(&fir(4, 8, pl));
        runs_ok(&crc(16, pl));
        runs_ok(&bsort(6, pl));
        runs_ok(&switchy(5, 12, 3, pl));
        runs_ok(&single_path(4, 10, pl));
        runs_ok(&pointer_chase(8, 20, pl));
        runs_ok(&twin_diamonds(4, pl));
        runs_ok(&two_phase(16, 4, pl));
    }

    #[test]
    fn bsort_sorts() {
        let p = bsort(5, Placement::default());
        let res = execute(&p, 1_000_000).expect("terminates");
        // After sorting the reverse array [5,4,3,2,1], final stores leave
        // ascending order; verify via the last store to index 0.
        let arr = p.data_regions()[0].base;
        let last_store_0 = res
            .accesses
            .iter()
            .rev()
            .find(|a| a.kind == crate::program::AccessKind::Store && a.addr == arr);
        assert!(last_store_0.is_some());
    }

    #[test]
    fn random_programs_terminate_for_many_seeds() {
        for seed in 0..30u64 {
            let p = random_program(seed, RandomParams::default(), Placement::default());
            runs_ok(&p);
        }
    }

    #[test]
    fn placement_slots_do_not_overlap() {
        let a = Placement::slot(0);
        let b = Placement::slot(1);
        assert!(a.code_base < b.code_base);
        let p0 = matmul(8, a);
        assert!(p0.code_end().0 < b.code_base.0);
    }

    #[test]
    fn kernel_specs_parse_to_the_same_programs() {
        let pl = Placement::slot(2);
        for (spec, direct) in [
            ("matmul:8", matmul(8, pl)),
            ("fir:6x24", fir(6, 24, pl)),
            ("crc:48", crc(48, pl)),
            ("bsort:10", bsort(10, pl)),
            ("switchy:16x50x20", switchy(16, 50, 20, pl)),
            ("spath:6x32", single_path(6, 32, pl)),
            ("chase:64x200", pointer_chase(64, 200, pl)),
            (
                "chase:2048x5000x32",
                pointer_chase_stride(2048, 5000, 32, pl),
            ),
            ("twin:12", twin_diamonds(12, pl)),
            ("twophase:512x8", two_phase(512, 8, pl)),
            ("rand:3", random_program(3, RandomParams::default(), pl)),
        ] {
            let parsed = parse_kernel(spec, pl).expect("parses");
            assert_eq!(parsed.name(), direct.name(), "{spec}");
            assert_eq!(
                format!("{parsed:?}"),
                format!("{direct:?}"),
                "{spec}: parsed kernel differs from direct construction"
            );
        }
        for bad in [
            "",
            "matmul",
            "matmul:axb",
            "fir:6",
            "mystery:3",
            "chase:64",
            // Out-of-domain arguments must be errors, not generator panics.
            "matmul:0",
            "fir:0x8",
            "crc:0",
            "bsort:1",
            "switchy:0x40x8",
            "spath:6x0",
            "chase:1x10",
            "chase:8x10x0",
            "twophase:0x1",
        ] {
            assert!(parse_kernel(bad, pl).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn twin_diamonds_declares_infeasible_pairs() {
        let p = twin_diamonds(3, Placement::default());
        assert_eq!(p.flow().infeasible_pairs().len(), 2);
    }
}
