//! Chunked `u64` word-loop primitives shared by the bitset dataflow
//! clients (the dominator computation here, the cache domain kernels in
//! `wcet-cache`).
//!
//! Every function walks its operands in explicitly unrolled 4-wide
//! chunks with a scalar tail. The unroll width matches one 256-bit
//! vector register, so the auto-vectorizer maps a chunk onto a single
//! lane-parallel operation; the explicit structure (fixed-width chunk
//! loop, then tail) keeps that shape stable across compiler versions
//! instead of relying on the vectorizer to find it in a generic
//! `zip`-and-fold. Equal operand lengths are asserted up front, which
//! also lets bounds checks hoist out of the chunk loop.

/// Words per unrolled chunk (one 256-bit lane of `u64`s).
pub const CHUNK: usize = 4;

/// `dst &= src`, word-wise. Panics if lengths differ.
pub fn and_into(dst: &mut [u64], src: &[u64]) {
    let n = eq_len(dst.len(), src.len());
    let mut k = 0;
    while k + CHUNK <= n {
        dst[k] &= src[k];
        dst[k + 1] &= src[k + 1];
        dst[k + 2] &= src[k + 2];
        dst[k + 3] &= src[k + 3];
        k += CHUNK;
    }
    while k < n {
        dst[k] &= src[k];
        k += 1;
    }
}

/// `dst |= src`, word-wise. Panics if lengths differ.
pub fn or_into(dst: &mut [u64], src: &[u64]) {
    let n = eq_len(dst.len(), src.len());
    let mut k = 0;
    while k + CHUNK <= n {
        dst[k] |= src[k];
        dst[k + 1] |= src[k + 1];
        dst[k + 2] |= src[k + 2];
        dst[k + 3] |= src[k + 3];
        k += CHUNK;
    }
    while k < n {
        dst[k] |= src[k];
        k += 1;
    }
}

/// `dst = src`, word-wise. Panics if lengths differ.
pub fn copy_into(dst: &mut [u64], src: &[u64]) {
    // A straight copy is the one loop memcpy already beats; delegate.
    dst.copy_from_slice(src);
}

/// Word-wise equality. Panics if lengths differ.
#[must_use]
pub fn words_eq(a: &[u64], b: &[u64]) -> bool {
    let n = eq_len(a.len(), b.len());
    let mut diff = 0u64;
    let mut k = 0;
    while k + CHUNK <= n {
        diff |= a[k] ^ b[k];
        diff |= a[k + 1] ^ b[k + 1];
        diff |= a[k + 2] ^ b[k + 2];
        diff |= a[k + 3] ^ b[k + 3];
        k += CHUNK;
    }
    while k < n {
        diff |= a[k] ^ b[k];
        k += 1;
    }
    diff == 0
}

#[inline]
fn eq_len(a: usize, b: usize) -> usize {
    assert_eq!(a, b, "word slices must have equal lengths");
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vecs(len: usize, seed: u64) -> (Vec<u64>, Vec<u64>) {
        let mut s = seed | 1;
        let mut next = || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let a: Vec<u64> = (0..len).map(|_| next()).collect();
        let b: Vec<u64> = (0..len).map(|_| next()).collect();
        (a, b)
    }

    #[test]
    fn chunk_and_tail_match_scalar() {
        // Cover empty, tail-only, exactly-one-chunk, and chunk+tail shapes.
        for len in [0usize, 1, 3, 4, 5, 8, 11, 64, 130] {
            let (a, b) = vecs(len, 0x9e37 + len as u64);
            let mut and = a.clone();
            and_into(&mut and, &b);
            let mut or = a.clone();
            or_into(&mut or, &b);
            for k in 0..len {
                assert_eq!(and[k], a[k] & b[k]);
                assert_eq!(or[k], a[k] | b[k]);
            }
            assert!(words_eq(&a, &a));
            assert_eq!(words_eq(&a, &b), a == b);
            let mut c = vec![0u64; len];
            copy_into(&mut c, &a);
            assert_eq!(c, a);
        }
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn length_mismatch_panics() {
        and_into(&mut [0, 0], &[0]);
    }
}
