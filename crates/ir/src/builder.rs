//! Ergonomic construction of CFGs (C-BUILDER).

use crate::cfg::{BasicBlock, BlockId, Cfg, CfgError, Terminator};
use crate::isa::Instr;

/// Incremental CFG builder.
///
/// Blocks are allocated first (so they can reference each other in
/// terminators), then filled with instructions and terminated. Un-terminated
/// blocks default to `Return`.
///
/// ```
/// use wcet_ir::builder::CfgBuilder;
/// use wcet_ir::cfg::Terminator;
/// use wcet_ir::isa::Instr;
///
/// # fn main() -> Result<(), wcet_ir::cfg::CfgError> {
/// let mut cb = CfgBuilder::new();
/// let a = cb.add_block();
/// let b = cb.add_block();
/// cb.push(a, Instr::Nop);
/// cb.terminate(a, Terminator::Jump(b));
/// let cfg = cb.build(a)?;
/// assert_eq!(cfg.num_blocks(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct CfgBuilder {
    blocks: Vec<(Vec<Instr>, Option<Terminator>)>,
}

impl CfgBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> CfgBuilder {
        CfgBuilder::default()
    }

    /// Allocates a new, empty block and returns its id.
    pub fn add_block(&mut self) -> BlockId {
        self.blocks.push((Vec::new(), None));
        BlockId::from_index(self.blocks.len() - 1)
    }

    /// Appends an instruction to `block`.
    ///
    /// # Panics
    ///
    /// Panics if `block` was not allocated by this builder.
    pub fn push(&mut self, block: BlockId, instr: Instr) -> &mut Self {
        self.blocks[block.index()].0.push(instr);
        self
    }

    /// Appends several instructions to `block`.
    ///
    /// # Panics
    ///
    /// Panics if `block` was not allocated by this builder.
    pub fn extend<I: IntoIterator<Item = Instr>>(
        &mut self,
        block: BlockId,
        instrs: I,
    ) -> &mut Self {
        self.blocks[block.index()].0.extend(instrs);
        self
    }

    /// Sets the terminator of `block`, replacing any previous one.
    ///
    /// # Panics
    ///
    /// Panics if `block` was not allocated by this builder.
    pub fn terminate(&mut self, block: BlockId, term: Terminator) -> &mut Self {
        self.blocks[block.index()].1 = Some(term);
        self
    }

    /// Number of instructions currently in `block`.
    ///
    /// # Panics
    ///
    /// Panics if `block` was not allocated by this builder.
    #[must_use]
    pub fn block_len(&self, block: BlockId) -> usize {
        self.blocks[block.index()].0.len()
    }

    /// Finalizes the CFG with the given entry block.
    ///
    /// Blocks without an explicit terminator become `Return` blocks.
    ///
    /// # Errors
    ///
    /// Propagates [`CfgError`] from [`Cfg::new`] validation.
    pub fn build(self, entry: BlockId) -> Result<Cfg, CfgError> {
        let blocks = self
            .blocks
            .into_iter()
            .map(|(instrs, term)| BasicBlock::new(instrs, term.unwrap_or(Terminator::Return)))
            .collect();
        Cfg::new(blocks, entry)
    }
}

#[cfg(test)]
impl crate::cfg::Cfg {
    /// Test helper: number of blocks (exercises the iterator API).
    fn block_len_check(&self) -> usize {
        self.iter().count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{r, Cond, Operand};

    #[test]
    fn default_terminator_is_return() {
        let mut cb = CfgBuilder::new();
        let a = cb.add_block();
        let cfg = cb.build(a).expect("single return block is valid");
        assert!(matches!(cfg.block(a).terminator(), Terminator::Return));
    }

    #[test]
    fn chained_pushes() {
        let mut cb = CfgBuilder::new();
        let a = cb.add_block();
        let b = cb.add_block();
        cb.push(a, Instr::Nop).push(a, Instr::Nop).terminate(
            a,
            Terminator::Branch {
                cond: Cond::Eq,
                lhs: r(0),
                rhs: Operand::Imm(0),
                taken: b,
                not_taken: a,
            },
        );
        // Branch back to a makes a self-loop; b returns.
        // not_taken: a -> a is a back edge to a non-dominating ... actually a
        // dominates itself so this is a valid self loop.
        cb.terminate(b, Terminator::Return);
        let cfg = cb.build(a).expect("valid");
        assert_eq!(cfg.block(a).instrs().len(), 2);
        assert_eq!(cfg.block_len_check(), 2);
    }
}
