//! A shared worklist fixpoint engine for CFG dataflow analyses.
//!
//! Every sweep-until-stable loop in the workspace used to re-evaluate
//! *every* block per round until a whole round produced no change. This
//! module replaces that schedule with a **priority worklist**: only blocks
//! whose input actually changed are re-evaluated, popped in a fixed
//! priority order.
//!
//! Two priority orders are provided:
//!
//! * [`Worklist::rpo`] — plain reverse postorder. Usable before loops are
//!   known (the dominator computation itself runs on it).
//! * [`Worklist::nested`] — a loop-nest-structured order (a weak
//!   topological ordering in Bourdoncle's sense): each loop's blocks are
//!   contiguous, inner loops nested inside outer ones, blocks within a
//!   level in reverse postorder. Popping the minimum-priority dirty block
//!   then *stabilizes inner loops before re-entering outer ones*: a back
//!   edge dirties its header, which (being the lowest dirty priority)
//!   drains the whole inner iteration before any block after the loop is
//!   looked at again.
//!
//! The engine only schedules; the client owns the states and the transfer
//! functions. Convergence to the same least fixpoint as the naive sweep is
//! the standard chaotic-iteration argument: with monotone transfers and
//! join-based updates, every fair iteration order reaches the identical
//! least solution — so results are bit-identical by construction, which
//! the differential property tests verify per client.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::cfg::{BlockId, Cfg};
use crate::loops::{LoopForest, LoopId};

/// Evaluation counters of one (or, after [`FixpointStats::absorb`],
/// several) worklist runs, against the bill of the naive sweep they
/// replace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FixpointStats {
    /// Blocks evaluated: worklist pops, each applying one block transfer.
    pub evaluated: u64,
    /// The most times any single block was evaluated (max over blocks,
    /// then over absorbed runs).
    pub max_trips: u64,
    /// What the replaced sweep-until-stable loop pays for the same
    /// convergence: a block evaluated `k` times here took `k` distinct
    /// input states, which a sweep spreads over `k` all-blocks rounds,
    /// plus the mandatory final round that observes no change —
    /// `(max_trips + 1) × blocks`, summed over absorbed runs.
    pub sweep_evals: u64,
    /// Words processed by the chunked word-kernels (joins and compiled
    /// transfers) during the run, summed over absorbed runs. The client
    /// reports it; runs without kernel instrumentation leave it zero.
    pub kernel_words: u64,
    /// Peak bytes of the per-analysis bump arena (max over absorbed
    /// runs — it is a footprint, not a flow).
    pub arena_bytes: u64,
    /// Arena resets: one per analysis by convention, summed over
    /// absorbed runs.
    pub arena_resets: u64,
}

impl FixpointStats {
    /// Adds `other`'s counters into `self` (kept beside the struct so a
    /// new field can never be silently dropped from an aggregation).
    pub fn absorb(&mut self, other: &FixpointStats) {
        self.evaluated += other.evaluated;
        self.max_trips = self.max_trips.max(other.max_trips);
        self.sweep_evals += other.sweep_evals;
        self.kernel_words += other.kernel_words;
        self.arena_bytes = self.arena_bytes.max(other.arena_bytes);
        self.arena_resets += other.arena_resets;
    }
}

/// A single-threaded accumulator for [`FixpointStats`], for threading
/// totals through call chains that cannot return them (e.g. the
/// statically-controlled analysis helpers).
#[derive(Debug, Default)]
pub struct FixpointSink(std::cell::Cell<FixpointStats>);

impl FixpointSink {
    /// A zeroed sink.
    #[must_use]
    pub fn new() -> FixpointSink {
        FixpointSink::default()
    }

    /// Adds `stats` into the running total.
    pub fn absorb(&self, stats: FixpointStats) {
        let mut cur = self.0.get();
        cur.absorb(&stats);
        self.0.set(cur);
    }

    /// The accumulated total.
    #[must_use]
    pub fn total(&self) -> FixpointStats {
        self.0.get()
    }
}

/// The priority worklist. Clients drive it:
///
/// ```
/// use wcet_ir::fixpoint::Worklist;
/// use wcet_ir::synth::{fir, Placement};
///
/// let p = fir(2, 4, Placement::default());
/// let cfg = p.cfg();
/// let mut max_depth = vec![0u32; cfg.num_blocks()];
/// let mut wl = Worklist::nested(cfg, p.loops());
/// wl.push(cfg.entry());
/// while let Some(b) = wl.pop() {
///     let out = max_depth[b.index()] + 1;
///     for &s in cfg.successors(b) {
///         // Monotone join; requeue only successors that changed.
///         if out > max_depth[s.index()] && out < 64 {
///             max_depth[s.index()] = out;
///             wl.push(s);
///         }
///     }
/// }
/// assert!(wl.stats().evaluated >= cfg.num_blocks() as u64);
/// ```
#[derive(Debug)]
pub struct Worklist {
    /// Evaluation order; `order[p]` is the block at priority `p`.
    order: Vec<BlockId>,
    /// Priority of each block (index into `order`).
    priority: Vec<u32>,
    /// Dirty blocks, popped lowest priority first.
    heap: BinaryHeap<Reverse<u32>>,
    /// Dedup guard: a block is enqueued at most once at a time.
    queued: Vec<bool>,
    /// Evaluations per block.
    trips: Vec<u32>,
}

impl Worklist {
    /// A worklist in plain reverse-postorder priority.
    #[must_use]
    pub fn rpo(cfg: &Cfg) -> Worklist {
        Worklist::with_order(cfg.reverse_postorder().to_vec(), cfg.num_blocks())
    }

    /// A worklist in loop-nest-structured priority (see the module docs).
    #[must_use]
    pub fn nested(cfg: &Cfg, loops: &LoopForest) -> Worklist {
        Worklist::with_order(nested_order(cfg, loops), cfg.num_blocks())
    }

    fn with_order(order: Vec<BlockId>, num_blocks: usize) -> Worklist {
        debug_assert_eq!(order.len(), num_blocks, "order must cover every block");
        let mut priority = vec![0u32; num_blocks];
        for (p, &b) in order.iter().enumerate() {
            priority[b.index()] = u32::try_from(p).expect("block count fits u32");
        }
        Worklist {
            order,
            priority,
            heap: BinaryHeap::with_capacity(num_blocks),
            queued: vec![false; num_blocks],
            trips: vec![0; num_blocks],
        }
    }

    /// The evaluation order (diagnostics; every block appears once).
    #[must_use]
    pub fn order(&self) -> &[BlockId] {
        &self.order
    }

    /// Marks `block` dirty (no-op if already enqueued).
    pub fn push(&mut self, block: BlockId) {
        let i = block.index();
        if !self.queued[i] {
            self.queued[i] = true;
            self.heap.push(Reverse(self.priority[i]));
        }
    }

    /// Pops the lowest-priority dirty block, counting the evaluation —
    /// and charging it against any armed [`crate::budget::BudgetScope`],
    /// which aborts a runaway fixpoint by unwinding.
    pub fn pop(&mut self) -> Option<BlockId> {
        let Reverse(p) = self.heap.pop()?;
        crate::budget::charge_eval();
        let block = self.order[p as usize];
        self.queued[block.index()] = false;
        self.trips[block.index()] += 1;
        Some(block)
    }

    /// Counters of this run (see [`FixpointStats`]).
    #[must_use]
    pub fn stats(&self) -> FixpointStats {
        let max_trips = u64::from(self.trips.iter().copied().max().unwrap_or(0));
        FixpointStats {
            evaluated: self.trips.iter().map(|&t| u64::from(t)).sum(),
            max_trips,
            sweep_evals: (max_trips + 1) * self.order.len() as u64,
            ..FixpointStats::default()
        }
    }
}

/// Builds the loop-nest-structured order: blocks in reverse postorder,
/// except that every loop's blocks are emitted contiguously (recursively,
/// inner loops as contiguous sub-runs) at the position of the loop
/// header. Headers dominate their loops, so a header is always the first
/// loop block reverse postorder reaches — the expansion is well-defined.
fn nested_order(cfg: &Cfg, loops: &LoopForest) -> Vec<BlockId> {
    let rpo = cfg.reverse_postorder();
    if loops.is_empty() {
        return rpo.to_vec();
    }
    let mut rpo_pos = vec![0u32; cfg.num_blocks()];
    for (i, &b) in rpo.iter().enumerate() {
        rpo_pos[b.index()] = u32::try_from(i).expect("block count fits u32");
    }
    let mut order = Vec::with_capacity(cfg.num_blocks());
    let mut emitted = vec![false; cfg.num_blocks()];
    emit_level(loops, &rpo_pos, rpo, None, &mut emitted, &mut order);
    debug_assert_eq!(order.len(), cfg.num_blocks());
    order
}

/// Emits `blocks` (the members of loop `level`, or the whole CFG when
/// `None`) in reverse-postorder, expanding each directly-nested loop as a
/// contiguous recursive run at its header.
fn emit_level(
    loops: &LoopForest,
    rpo_pos: &[u32],
    blocks: &[BlockId],
    level: Option<LoopId>,
    emitted: &mut [bool],
    order: &mut Vec<BlockId>,
) {
    let mut sorted: Vec<BlockId> = blocks.to_vec();
    sorted.sort_unstable_by_key(|b| rpo_pos[b.index()]);
    for b in sorted {
        if emitted[b.index()] {
            continue;
        }
        // The loop directly nested in `level` that contains `b`, if any.
        // By dominance it is then headed by `b` (see `nested_order`).
        let child = loops
            .containing(b)
            .into_iter()
            .find(|&l| loops.loop_of(l).parent == level);
        match child {
            Some(l) => {
                let members: Vec<BlockId> = loops.loop_of(l).blocks.iter().copied().collect();
                emit_level(loops, rpo_pos, &members, Some(l), emitted, order);
            }
            None => {
                emitted[b.index()] = true;
                order.push(b);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CfgBuilder;
    use crate::cfg::Terminator;
    use crate::isa::{r, Cond, Instr, Operand};

    /// entry -> h1 { b1 -> h2 { b2 } latch1 } -> exit (two nested loops).
    fn nested_cfg() -> Cfg {
        let mut cb = CfgBuilder::new();
        let entry = cb.add_block();
        let h1 = cb.add_block();
        let b1 = cb.add_block();
        let h2 = cb.add_block();
        let b2 = cb.add_block();
        let latch1 = cb.add_block();
        let exit = cb.add_block();
        cb.terminate(entry, Terminator::Jump(h1));
        cb.terminate(
            h1,
            Terminator::Branch {
                cond: Cond::Lt,
                lhs: r(1),
                rhs: Operand::Imm(8),
                taken: b1,
                not_taken: exit,
            },
        );
        cb.terminate(b1, Terminator::Jump(h2));
        cb.terminate(
            h2,
            Terminator::Branch {
                cond: Cond::Lt,
                lhs: r(2),
                rhs: Operand::Imm(4),
                taken: b2,
                not_taken: latch1,
            },
        );
        cb.push(b2, Instr::Nop);
        cb.terminate(b2, Terminator::Jump(h2));
        cb.terminate(latch1, Terminator::Jump(h1));
        cb.terminate(exit, Terminator::Return);
        cb.build(entry).expect("valid nested cfg")
    }

    #[test]
    fn nested_order_keeps_loops_contiguous() {
        let cfg = nested_cfg();
        let loops = LoopForest::analyze(&cfg).expect("reducible");
        let order = nested_order(&cfg, &loops);
        assert_eq!(order.len(), cfg.num_blocks());
        let pos = |b: BlockId| order.iter().position(|&x| x == b).expect("block in order") as isize;
        for l in loops.ids() {
            let lp = loops.loop_of(l);
            let positions: Vec<isize> = lp.blocks.iter().map(|&b| pos(b)).collect();
            let (min, max) = (
                *positions.iter().min().expect("non-empty"),
                *positions.iter().max().expect("non-empty"),
            );
            assert_eq!(
                (max - min + 1) as usize,
                lp.blocks.len(),
                "loop {l} blocks are not contiguous in {order:?}"
            );
            assert_eq!(min, pos(lp.header), "header must lead its loop");
        }
    }

    #[test]
    fn worklist_dedupes_and_orders_pops() {
        let cfg = nested_cfg();
        let loops = LoopForest::analyze(&cfg).expect("reducible");
        let mut wl = Worklist::nested(&cfg, &loops);
        let b = BlockId::from_index;
        wl.push(b(4));
        wl.push(b(1));
        wl.push(b(4)); // dedup
        wl.push(b(0));
        assert_eq!(wl.pop(), Some(b(0)));
        assert_eq!(wl.pop(), Some(b(1)));
        assert_eq!(wl.pop(), Some(b(4)));
        assert_eq!(wl.pop(), None);
        let s = wl.stats();
        assert_eq!(s.evaluated, 3);
        assert_eq!(s.max_trips, 1);
        assert_eq!(s.sweep_evals, 2 * cfg.num_blocks() as u64);
    }

    #[test]
    fn inner_loop_drains_before_outer_continues() {
        // Dirty the inner header and a block after the inner loop: the
        // inner header must pop first (lower nested priority).
        let cfg = nested_cfg();
        let loops = LoopForest::analyze(&cfg).expect("reducible");
        let inner = loops
            .ids()
            .find(|&l| loops.loop_of(l).depth == 2)
            .expect("inner loop");
        let header = loops.loop_of(inner).header;
        let latch1 = BlockId::from_index(5);
        let mut wl = Worklist::nested(&cfg, &loops);
        wl.push(latch1);
        wl.push(header);
        assert_eq!(wl.pop(), Some(header));
        assert_eq!(wl.pop(), Some(latch1));
    }

    #[test]
    fn sink_accumulates() {
        let sink = FixpointSink::new();
        sink.absorb(FixpointStats {
            evaluated: 3,
            max_trips: 2,
            sweep_evals: 10,
            kernel_words: 100,
            arena_bytes: 64,
            arena_resets: 1,
        });
        sink.absorb(FixpointStats {
            evaluated: 4,
            max_trips: 1,
            sweep_evals: 5,
            kernel_words: 50,
            arena_bytes: 32,
            arena_resets: 1,
        });
        let t = sink.total();
        assert_eq!((t.evaluated, t.max_trips, t.sweep_evals), (7, 2, 15));
        // kernel words and resets sum; arena bytes is a peak footprint.
        assert_eq!(
            (t.kernel_words, t.arena_bytes, t.arena_resets),
            (150, 64, 2)
        );
    }
}
