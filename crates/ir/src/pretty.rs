//! Human-readable listings and Graphviz output.

use std::fmt::Write as _;

use crate::cfg::Cfg;
use crate::program::Program;

/// Renders a full assembly-style listing of the program.
#[must_use]
pub fn listing(program: &Program) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "; program {}", program.name());
    for region in program.data_regions() {
        let _ = writeln!(
            out,
            "; data {:10} @ {} ({} bytes)",
            region.name, region.base, region.bytes
        );
    }
    for (id, blk) in program.cfg().iter() {
        let _ = writeln!(out, "{id}: ; @ {}", program.block_addr(id));
        for ins in blk.instrs() {
            let _ = writeln!(out, "    {ins}");
        }
        let _ = writeln!(out, "    {}", blk.terminator());
    }
    out
}

/// Renders the CFG in Graphviz `dot` syntax.
#[must_use]
pub fn to_dot(cfg: &Cfg, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{name}\" {{");
    let _ = writeln!(out, "  node [shape=box fontname=monospace];");
    for (id, blk) in cfg.iter() {
        let mut label = format!("{id}\\n");
        for ins in blk.instrs() {
            let _ = write!(label, "{ins}\\l");
        }
        let _ = write!(label, "{}\\l", blk.terminator());
        // Keep "->" exclusive to edge lines so the output stays greppable.
        let label = label.replace("->", "=>");
        let _ = writeln!(out, "  {} [label=\"{}\"];", id.index(), label);
    }
    for e in cfg.edges() {
        let _ = writeln!(out, "  {} -> {};", e.from.index(), e.to.index());
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{crc, Placement};

    #[test]
    fn listing_mentions_every_block() {
        let p = crc(4, Placement::default());
        let text = listing(&p);
        for (id, _) in p.cfg().iter() {
            assert!(text.contains(&format!("{id}:")), "missing {id}");
        }
        assert!(text.contains("; data"));
    }

    #[test]
    fn dot_is_well_formed() {
        let p = crc(4, Placement::default());
        let dot = to_dot(p.cfg(), p.name());
        assert!(dot.starts_with("digraph"));
        assert!(dot.trim_end().ends_with('}'));
        assert_eq!(dot.matches(" -> ").count(), p.cfg().edges().len());
    }
}
