//! A [`Program`] couples a CFG with its memory layout and flow facts.
//!
//! The layout assigns every instruction a fetch address (for
//! instruction-cache analysis) and records the data regions the program may
//! touch (for data-cache and shared-cache interference analysis). Multicore
//! experiments steer inter-task cache conflicts by choosing overlapping or
//! disjoint code/data bases for co-scheduled programs.

use std::collections::BTreeMap;
use std::fmt;

use crate::cfg::{BlockId, Cfg};
use crate::flow::{FlowError, FlowFacts};
use crate::isa::{Addr, MemRef, INSTR_BYTES, NUM_REGS};
use crate::loops::{IrreducibleError, LoopForest};

/// A named contiguous data region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataRegion {
    /// Region name (for reports).
    pub name: String,
    /// First byte address.
    pub base: Addr,
    /// Region size in bytes.
    pub bytes: u64,
}

impl DataRegion {
    /// Creates a region.
    #[must_use]
    pub fn new(name: impl Into<String>, base: Addr, bytes: u64) -> DataRegion {
        DataRegion {
            name: name.into(),
            base,
            bytes,
        }
    }

    /// True if `addr` lies inside the region.
    #[must_use]
    pub fn contains(&self, addr: Addr) -> bool {
        addr >= self.base && addr.0 < self.base.0 + self.bytes
    }
}

/// Code/data placement for a program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Layout {
    /// Address of the first instruction of block 0.
    pub code_base: Addr,
}

impl Default for Layout {
    fn default() -> Self {
        Layout {
            code_base: Addr(0x1_0000),
        }
    }
}

/// Kind of a memory access, as seen by the cache hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AccessKind {
    /// Instruction fetch.
    Fetch,
    /// Data load.
    Load,
    /// Data store.
    Store,
}

impl AccessKind {
    /// True for [`AccessKind::Load`] and [`AccessKind::Store`].
    #[must_use]
    pub fn is_data(self) -> bool {
        !matches!(self, AccessKind::Fetch)
    }
}

/// The statically-known address set of one access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessAddrs {
    /// Exactly one address.
    Exact(Addr),
    /// Any address in `[base, base + bytes)` (stride-aligned).
    Range {
        /// Region start.
        base: Addr,
        /// Region length in bytes.
        bytes: u64,
    },
}

impl AccessAddrs {
    /// The single address if the set is a singleton.
    #[must_use]
    pub fn exact(&self) -> Option<Addr> {
        match *self {
            AccessAddrs::Exact(a) => Some(a),
            AccessAddrs::Range { base, bytes } if bytes <= 8 => Some(base),
            AccessAddrs::Range { .. } => None,
        }
    }
}

/// One memory access site inside a block, in program order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessSite {
    /// Containing block.
    pub block: BlockId,
    /// Position within the block's access sequence (fetches and data
    /// accesses interleaved in program order).
    pub seq: u32,
    /// Fetch / load / store.
    pub kind: AccessKind,
    /// Statically-known address set.
    pub addrs: AccessAddrs,
}

/// Errors from [`Program::new`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramError {
    /// Loop analysis failed (irreducible CFG).
    Irreducible(IrreducibleError),
    /// Flow facts are inconsistent with the CFG.
    Flow(FlowError),
    /// An indexed memory reference has zero stride or count.
    BadMemRef {
        /// Block containing the offending instruction.
        block: BlockId,
    },
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::Irreducible(e) => write!(f, "{e}"),
            ProgramError::Flow(e) => write!(f, "{e}"),
            ProgramError::BadMemRef { block } => {
                write!(
                    f,
                    "indexed memory reference in {block} has zero stride or count"
                )
            }
        }
    }
}

impl std::error::Error for ProgramError {}

impl From<IrreducibleError> for ProgramError {
    fn from(e: IrreducibleError) -> Self {
        ProgramError::Irreducible(e)
    }
}

impl From<FlowError> for ProgramError {
    fn from(e: FlowError) -> Self {
        ProgramError::Flow(e)
    }
}

/// A complete analysable program: CFG + loops + flow facts + layout +
/// initial machine state.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    name: String,
    cfg: Cfg,
    loops: LoopForest,
    flow: FlowFacts,
    layout: Layout,
    block_addrs: Vec<Addr>,
    data_regions: Vec<DataRegion>,
    init_regs: [i64; NUM_REGS],
    init_mem: Vec<(Addr, i64)>,
}

impl Program {
    /// Assembles a program.
    ///
    /// Runs loop analysis, validates the flow facts, and lays the code out
    /// from `layout.code_base` (blocks in id order, [`INSTR_BYTES`] per
    /// instruction slot, terminator included).
    ///
    /// # Errors
    ///
    /// Returns [`ProgramError`] if the CFG is irreducible, the flow facts do
    /// not cover every loop, or a memory reference is malformed.
    pub fn new(
        name: impl Into<String>,
        cfg: Cfg,
        flow: FlowFacts,
        layout: Layout,
    ) -> Result<Program, ProgramError> {
        let loops = LoopForest::analyze(&cfg)?;
        flow.validate(&cfg, &loops)?;
        for (id, blk) in cfg.iter() {
            for ins in blk.instrs() {
                if let Some(&MemRef::Indexed { stride, count, .. }) = ins.mem_ref() {
                    if stride == 0 || count == 0 {
                        return Err(ProgramError::BadMemRef { block: id });
                    }
                }
            }
        }
        let mut block_addrs = Vec::with_capacity(cfg.num_blocks());
        let mut cursor = layout.code_base;
        for (_, blk) in cfg.iter() {
            block_addrs.push(cursor);
            cursor = cursor.offset(blk.fetch_slots() as u64 * INSTR_BYTES);
        }
        Ok(Program {
            name: name.into(),
            cfg,
            loops,
            flow,
            layout,
            block_addrs,
            data_regions: Vec::new(),
            init_regs: [0; NUM_REGS],
            init_mem: Vec::new(),
        })
    }

    /// Adds a named data region (builder-style).
    #[must_use]
    pub fn with_data_region(mut self, region: DataRegion) -> Program {
        self.data_regions.push(region);
        self
    }

    /// Sets an initial register value (builder-style).
    #[must_use]
    pub fn with_init_reg(mut self, reg: crate::isa::Reg, value: i64) -> Program {
        self.init_regs[reg.index()] = value;
        self
    }

    /// Sets an initial memory word (builder-style).
    #[must_use]
    pub fn with_init_mem(mut self, addr: Addr, value: i64) -> Program {
        self.init_mem.push((addr, value));
        self
    }

    /// Program name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The control-flow graph.
    #[must_use]
    pub fn cfg(&self) -> &Cfg {
        &self.cfg
    }

    /// The loop forest.
    #[must_use]
    pub fn loops(&self) -> &LoopForest {
        &self.loops
    }

    /// The flow facts.
    #[must_use]
    pub fn flow(&self) -> &FlowFacts {
        &self.flow
    }

    /// The code layout.
    #[must_use]
    pub fn layout(&self) -> Layout {
        self.layout
    }

    /// Declared data regions.
    #[must_use]
    pub fn data_regions(&self) -> &[DataRegion] {
        &self.data_regions
    }

    /// Initial register file.
    #[must_use]
    pub fn init_regs(&self) -> &[i64; NUM_REGS] {
        &self.init_regs
    }

    /// Initial memory contents, as `(address, value)` words.
    #[must_use]
    pub fn init_mem(&self) -> &[(Addr, i64)] {
        &self.init_mem
    }

    /// Start address of a block's first instruction slot.
    ///
    /// # Panics
    ///
    /// Panics if `block` is out of range.
    #[must_use]
    pub fn block_addr(&self, block: BlockId) -> Addr {
        self.block_addrs[block.index()]
    }

    /// Fetch address of instruction slot `slot` of `block` (the terminator
    /// occupies the last slot).
    ///
    /// # Panics
    ///
    /// Panics if `block` or `slot` is out of range.
    #[must_use]
    pub fn fetch_addr(&self, block: BlockId, slot: usize) -> Addr {
        assert!(
            slot < self.cfg.block(block).fetch_slots(),
            "slot out of range"
        );
        self.block_addrs[block.index()].offset(slot as u64 * INSTR_BYTES)
    }

    /// One byte past the end of the code.
    #[must_use]
    pub fn code_end(&self) -> Addr {
        let last = BlockId::from_index(self.cfg.num_blocks() - 1);
        self.block_addrs[last.index()]
            .offset(self.cfg.block(last).fetch_slots() as u64 * INSTR_BYTES)
    }

    /// Code size in bytes.
    #[must_use]
    pub fn code_bytes(&self) -> u64 {
        self.code_end().0 - self.layout.code_base.0
    }

    /// All memory access sites of `block` in program order: one `Fetch` per
    /// instruction slot, with `Load`/`Store` sites interleaved right after
    /// the fetch of their instruction.
    #[must_use]
    pub fn accesses(&self, block: BlockId) -> Vec<AccessSite> {
        let blk = self.cfg.block(block);
        let mut out = Vec::with_capacity(blk.fetch_slots() + 4);
        let mut seq = 0u32;
        let mut push = |kind, addrs, seq: &mut u32| {
            out.push(AccessSite {
                block,
                seq: *seq,
                kind,
                addrs,
            });
            *seq += 1;
        };
        for (slot, ins) in blk.instrs().iter().enumerate() {
            push(
                AccessKind::Fetch,
                AccessAddrs::Exact(self.fetch_addr(block, slot)),
                &mut seq,
            );
            if let Some(mem) = ins.mem_ref() {
                let kind = if ins.is_store() {
                    AccessKind::Store
                } else {
                    AccessKind::Load
                };
                let addrs = match *mem {
                    MemRef::Static(a) => AccessAddrs::Exact(a),
                    MemRef::Indexed { .. } => {
                        let (base, bytes) = mem.touched_region();
                        if mem.is_singleton() {
                            AccessAddrs::Exact(base)
                        } else {
                            AccessAddrs::Range { base, bytes }
                        }
                    }
                };
                push(kind, addrs, &mut seq);
            }
        }
        // Terminator fetch.
        push(
            AccessKind::Fetch,
            AccessAddrs::Exact(self.fetch_addr(block, blk.fetch_slots() - 1)),
            &mut seq,
        );
        out
    }

    /// All access sites of the whole program, block by block.
    #[must_use]
    pub fn all_accesses(&self) -> BTreeMap<BlockId, Vec<AccessSite>> {
        self.cfg
            .block_ids()
            .map(|b| (b, self.accesses(b)))
            .collect()
    }

    /// The worst-case execution count of `block` (product of enclosing loop
    /// bounds; see [`FlowFacts::max_block_count`]).
    #[must_use]
    pub fn max_block_count(&self, block: BlockId) -> u64 {
        self.flow.max_block_count(&self.loops, block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CfgBuilder;
    use crate::cfg::Terminator;
    use crate::isa::{r, Instr};

    fn two_block_program() -> Program {
        let mut cb = CfgBuilder::new();
        let a = cb.add_block();
        let b = cb.add_block();
        cb.push(a, Instr::Nop);
        cb.push(
            a,
            Instr::Load {
                dst: r(1),
                mem: MemRef::Static(Addr(0x8000)),
            },
        );
        cb.terminate(a, Terminator::Jump(b));
        cb.push(
            b,
            Instr::Store {
                src: r(1),
                mem: MemRef::Static(Addr(0x8008)),
            },
        );
        cb.terminate(b, Terminator::Return);
        let cfg = cb.build(a).expect("valid");
        Program::new(
            "t",
            cfg,
            FlowFacts::new(),
            Layout {
                code_base: Addr(0x100),
            },
        )
        .expect("valid program")
    }

    #[test]
    fn layout_is_contiguous() {
        let p = two_block_program();
        let a = BlockId::from_index(0);
        let b = BlockId::from_index(1);
        // Block a: 2 instrs + term = 3 slots = 12 bytes.
        assert_eq!(p.block_addr(a), Addr(0x100));
        assert_eq!(p.block_addr(b), Addr(0x10c));
        assert_eq!(p.fetch_addr(a, 2), Addr(0x108));
        assert_eq!(p.code_end(), Addr(0x10c + 8));
        assert_eq!(p.code_bytes(), 20);
    }

    #[test]
    fn accesses_interleave_fetch_and_data() {
        let p = two_block_program();
        let a = BlockId::from_index(0);
        let acc = p.accesses(a);
        // fetch nop, fetch load, data load, fetch terminator.
        assert_eq!(acc.len(), 4);
        assert_eq!(acc[0].kind, AccessKind::Fetch);
        assert_eq!(acc[1].kind, AccessKind::Fetch);
        assert_eq!(acc[2].kind, AccessKind::Load);
        assert_eq!(acc[2].addrs, AccessAddrs::Exact(Addr(0x8000)));
        assert_eq!(acc[3].kind, AccessKind::Fetch);
        let seqs: Vec<u32> = acc.iter().map(|s| s.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3]);
    }

    #[test]
    fn rejects_zero_stride() {
        let mut cb = CfgBuilder::new();
        let a = cb.add_block();
        cb.push(
            a,
            Instr::Load {
                dst: r(1),
                mem: MemRef::Indexed {
                    base: Addr(0),
                    stride: 0,
                    count: 4,
                    index: r(2),
                },
            },
        );
        cb.terminate(a, Terminator::Return);
        let cfg = cb.build(a).expect("valid cfg");
        let err = Program::new("bad", cfg, FlowFacts::new(), Layout::default()).unwrap_err();
        assert!(matches!(err, ProgramError::BadMemRef { .. }));
    }

    #[test]
    fn builder_style_extras() {
        let p = two_block_program()
            .with_data_region(DataRegion::new("buf", Addr(0x8000), 64))
            .with_init_reg(r(5), 42)
            .with_init_mem(Addr(0x8000), 7);
        assert_eq!(p.data_regions().len(), 1);
        assert!(p.data_regions()[0].contains(Addr(0x803f)));
        assert!(!p.data_regions()[0].contains(Addr(0x8040)));
        assert_eq!(p.init_regs()[5], 42);
        assert_eq!(p.init_mem(), &[(Addr(0x8000), 7)]);
    }
}
