//! The synthetic RISC instruction set used throughout the toolkit.
//!
//! Static WCET analysis (the paper's §2.1) consumes a control-flow graph and
//! the per-instruction *timing-relevant* attributes: execution latency and the
//! statically-describable set of memory addresses an access may touch. This
//! ISA keeps exactly that information and nothing more, which is what makes
//! the cache and pipeline analyses in the sibling crates exact within the
//! model.
//!
//! Every instruction occupies [`INSTR_BYTES`] bytes of code memory, so
//! instruction-fetch addresses (for instruction-cache analysis) follow
//! directly from the block layout performed by
//! [`Program`](crate::program::Program).

use std::fmt;

/// Number of architectural registers.
pub const NUM_REGS: usize = 32;

/// Size of one encoded instruction in bytes (fixed-width ISA).
pub const INSTR_BYTES: u64 = 4;

/// A byte address in the unified code/data address space.
///
/// Newtype per C-NEWTYPE: addresses are never confused with plain counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(pub u64);

impl Addr {
    /// Returns the address `bytes` bytes above `self`.
    #[must_use]
    pub fn offset(self, bytes: u64) -> Addr {
        Addr(self.0 + bytes)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for Addr {
    fn from(v: u64) -> Self {
        Addr(v)
    }
}

/// An architectural register, `r0` .. `r31`.
///
/// `r0` is an ordinary register (not hard-wired to zero).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// Creates register `rN`.
    ///
    /// # Panics
    ///
    /// Panics if `n >= NUM_REGS`.
    #[must_use]
    pub fn new(n: u8) -> Reg {
        assert!(
            (n as usize) < NUM_REGS,
            "register index {n} out of range (max {})",
            NUM_REGS - 1
        );
        Reg(n)
    }

    /// The register's index, `0..NUM_REGS`.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Shorthand constructor for [`Reg`]; `r(3)` is register `r3`.
///
/// # Panics
///
/// Panics if `n >= NUM_REGS`.
#[must_use]
pub fn r(n: u8) -> Reg {
    Reg::new(n)
}

/// Arithmetic/logic operations, with fixed execution latencies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Wrapping addition (1 cycle).
    Add,
    /// Wrapping subtraction (1 cycle).
    Sub,
    /// Bitwise and (1 cycle).
    And,
    /// Bitwise or (1 cycle).
    Or,
    /// Bitwise xor (1 cycle).
    Xor,
    /// Logical shift left by `rhs & 63` (1 cycle).
    Shl,
    /// Arithmetic shift right by `rhs & 63` (1 cycle).
    Shr,
    /// Signed set-less-than: `dst = (lhs < rhs) as i64` (1 cycle).
    Slt,
    /// Wrapping multiplication ([`MUL_LATENCY`] cycles).
    Mul,
    /// Signed division; division by zero yields 0 ([`DIV_LATENCY`] cycles).
    Div,
    /// Remainder; remainder by zero yields 0 ([`DIV_LATENCY`] cycles).
    Rem,
}

/// Execution latency of [`AluOp::Mul`] in cycles.
pub const MUL_LATENCY: u32 = 3;
/// Execution latency of [`AluOp::Div`] and [`AluOp::Rem`] in cycles.
pub const DIV_LATENCY: u32 = 12;

impl AluOp {
    /// Execution (EX-stage occupancy) latency in cycles.
    #[must_use]
    pub fn latency(self) -> u32 {
        match self {
            AluOp::Mul => MUL_LATENCY,
            AluOp::Div | AluOp::Rem => DIV_LATENCY,
            _ => 1,
        }
    }
}

impl fmt::Display for AluOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Shl => "shl",
            AluOp::Shr => "shr",
            AluOp::Slt => "slt",
            AluOp::Mul => "mul",
            AluOp::Div => "div",
            AluOp::Rem => "rem",
        };
        f.write_str(s)
    }
}

/// Second ALU/branch operand: a register or a signed immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// Register operand.
    Reg(Reg),
    /// Immediate operand.
    Imm(i64),
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(i) => write!(f, "{i}"),
        }
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Self {
        Operand::Reg(r)
    }
}

impl From<i64> for Operand {
    fn from(i: i64) -> Self {
        Operand::Imm(i)
    }
}

/// A statically-describable memory reference.
///
/// WCET data-cache analysis needs, for every access site, the set of memory
/// lines the access may touch. The two variants cover the patterns the
/// surveyed benchmarks need while keeping that set exactly computable:
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemRef {
    /// A scalar access to one fixed address.
    Static(Addr),
    /// An access into a dense table: the effective address is
    /// `base + stride * (index_reg mod count)` (with `index_reg` taken as
    /// unsigned), so the touched region is exactly
    /// `[base, base + stride*count)`.
    Indexed {
        /// Start of the table.
        base: Addr,
        /// Element stride in bytes (must be non-zero).
        stride: u32,
        /// Number of elements in the table (must be non-zero).
        count: u32,
        /// Register holding the element index; wrapped modulo `count`.
        index: Reg,
    },
}

impl MemRef {
    /// The byte region this reference may touch: `(base, length_in_bytes)`.
    #[must_use]
    pub fn touched_region(&self) -> (Addr, u64) {
        match *self {
            MemRef::Static(a) => (a, 8),
            MemRef::Indexed {
                base,
                stride,
                count,
                ..
            } => (base, u64::from(stride) * u64::from(count)),
        }
    }

    /// Concrete effective address for a given index-register value.
    ///
    /// For [`MemRef::Static`] the register value is ignored.
    #[must_use]
    pub fn effective_addr(&self, index_value: i64) -> Addr {
        match *self {
            MemRef::Static(a) => a,
            MemRef::Indexed {
                base,
                stride,
                count,
                ..
            } => {
                let idx = (index_value as u64) % u64::from(count);
                base.offset(idx * u64::from(stride))
            }
        }
    }

    /// True if the reference can only ever touch a single address.
    #[must_use]
    pub fn is_singleton(&self) -> bool {
        match *self {
            MemRef::Static(_) => true,
            MemRef::Indexed { count, .. } => count == 1,
        }
    }
}

impl fmt::Display for MemRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            MemRef::Static(a) => write!(f, "[{a}]"),
            MemRef::Indexed {
                base,
                stride,
                count,
                index,
            } => {
                write!(f, "[{base} + {stride}*({index} % {count})]")
            }
        }
    }
}

/// One non-terminator instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instr {
    /// `dst = lhs <op> rhs`.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination register.
        dst: Reg,
        /// First operand register.
        lhs: Reg,
        /// Second operand.
        rhs: Operand,
    },
    /// `dst = imm`.
    LoadImm {
        /// Destination register.
        dst: Reg,
        /// Immediate value.
        imm: i64,
    },
    /// `dst = mem[ref]` (8-byte load).
    Load {
        /// Destination register.
        dst: Reg,
        /// Memory reference.
        mem: MemRef,
    },
    /// `mem[ref] = src` (8-byte store).
    Store {
        /// Source register.
        src: Reg,
        /// Memory reference.
        mem: MemRef,
    },
    /// Cooperative yield point (fine-grained multithreading, paper §5.1).
    ///
    /// On a single-threaded core this is a 1-cycle no-op; on a
    /// yield-switching multithreaded core it is the only point where control
    /// may transfer to a co-routine thread.
    Yield,
    /// 1-cycle no-op (used for code-footprint padding).
    Nop,
}

impl Instr {
    /// EX-stage latency in cycles (memory penalties are *not* included; they
    /// are modelled by the cache/bus analyses and the simulator).
    #[must_use]
    pub fn exec_latency(&self) -> u32 {
        match self {
            Instr::Alu { op, .. } => op.latency(),
            _ => 1,
        }
    }

    /// The data-memory reference of this instruction, if any.
    #[must_use]
    pub fn mem_ref(&self) -> Option<&MemRef> {
        match self {
            Instr::Load { mem, .. } | Instr::Store { mem, .. } => Some(mem),
            _ => None,
        }
    }

    /// True for [`Instr::Store`].
    #[must_use]
    pub fn is_store(&self) -> bool {
        matches!(self, Instr::Store { .. })
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::Alu { op, dst, lhs, rhs } => write!(f, "{op} {dst}, {lhs}, {rhs}"),
            Instr::LoadImm { dst, imm } => write!(f, "li {dst}, {imm}"),
            Instr::Load { dst, mem } => write!(f, "ld {dst}, {mem}"),
            Instr::Store { src, mem } => write!(f, "st {src}, {mem}"),
            Instr::Yield => f.write_str("yield"),
            Instr::Nop => f.write_str("nop"),
        }
    }
}

/// Branch conditions for [`Terminator::Branch`](crate::cfg::Terminator).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cond {
    /// `lhs == rhs`.
    Eq,
    /// `lhs != rhs`.
    Ne,
    /// Signed `lhs < rhs`.
    Lt,
    /// Signed `lhs >= rhs`.
    Ge,
    /// Unsigned `lhs < rhs`.
    LtU,
    /// Unsigned `lhs >= rhs`.
    GeU,
}

impl Cond {
    /// Evaluates the condition on concrete values.
    #[must_use]
    pub fn eval(self, lhs: i64, rhs: i64) -> bool {
        match self {
            Cond::Eq => lhs == rhs,
            Cond::Ne => lhs != rhs,
            Cond::Lt => lhs < rhs,
            Cond::Ge => lhs >= rhs,
            Cond::LtU => (lhs as u64) < (rhs as u64),
            Cond::GeU => (lhs as u64) >= (rhs as u64),
        }
    }

    /// The negated condition.
    #[must_use]
    pub fn negate(self) -> Cond {
        match self {
            Cond::Eq => Cond::Ne,
            Cond::Ne => Cond::Eq,
            Cond::Lt => Cond::Ge,
            Cond::Ge => Cond::Lt,
            Cond::LtU => Cond::GeU,
            Cond::GeU => Cond::LtU,
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Cond::Eq => "eq",
            Cond::Ne => "ne",
            Cond::Lt => "lt",
            Cond::Ge => "ge",
            Cond::LtU => "ltu",
            Cond::GeU => "geu",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_roundtrip_and_display() {
        let reg = r(7);
        assert_eq!(reg.index(), 7);
        assert_eq!(reg.to_string(), "r7");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn reg_out_of_range_panics() {
        let _ = Reg::new(32);
    }

    #[test]
    fn alu_latencies() {
        assert_eq!(AluOp::Add.latency(), 1);
        assert_eq!(AluOp::Mul.latency(), MUL_LATENCY);
        assert_eq!(AluOp::Div.latency(), DIV_LATENCY);
        assert_eq!(Instr::Nop.exec_latency(), 1);
    }

    #[test]
    fn memref_static_region() {
        let m = MemRef::Static(Addr(0x100));
        assert_eq!(m.touched_region(), (Addr(0x100), 8));
        assert!(m.is_singleton());
        assert_eq!(m.effective_addr(999), Addr(0x100));
    }

    #[test]
    fn memref_indexed_wraps_modulo_count() {
        let m = MemRef::Indexed {
            base: Addr(0x1000),
            stride: 8,
            count: 4,
            index: r(1),
        };
        assert_eq!(m.touched_region(), (Addr(0x1000), 32));
        assert_eq!(m.effective_addr(0), Addr(0x1000));
        assert_eq!(m.effective_addr(3), Addr(0x1018));
        assert_eq!(m.effective_addr(4), Addr(0x1000));
        assert_eq!(
            m.effective_addr(-1),
            Addr(0x1000).offset(8 * ((-1i64 as u64) % 4))
        );
        assert!(!m.is_singleton());
    }

    #[test]
    fn cond_eval_and_negate() {
        assert!(Cond::Lt.eval(-1, 0));
        assert!(!Cond::LtU.eval(-1, 0)); // -1 as u64 is huge
        assert!(Cond::GeU.eval(-1, 0));
        for c in [Cond::Eq, Cond::Ne, Cond::Lt, Cond::Ge, Cond::LtU, Cond::GeU] {
            for (a, b) in [(0, 0), (1, 2), (-3, 7), (i64::MIN, i64::MAX)] {
                assert_ne!(c.eval(a, b), c.negate().eval(a, b));
            }
        }
    }

    #[test]
    fn addr_display_is_hex() {
        assert_eq!(Addr(0x2a).to_string(), "0x2a");
        assert_eq!(Addr(16).offset(16), Addr(32));
    }
}
