//! Cooperative per-cell budgets for worklist-fixpoint effort.
//!
//! A campaign worker arms a [`BudgetScope`] around one cell's analysis;
//! every [`crate::fixpoint::Worklist::pop`] then charges one evaluation
//! against the scope. When the budget (or the cell's wall-clock
//! deadline) is exhausted the charge aborts the cell by unwinding with a
//! typed [`BudgetExceeded`] payload, which the supervisor catches at the
//! cell boundary and turns into a structured failure row — cooperative
//! cancellation without threading a token through every analysis
//! signature.
//!
//! The state is thread-local because analyses run synchronously on the
//! worker that armed the scope; an unarmed thread pays one `Cell` read
//! per evaluation. Scopes nest by restore-on-drop, so a stray inner arm
//! can never leak a stale budget into the next cell.

use std::cell::Cell;
use std::fmt;
use std::time::Instant;

/// The unwind payload of an exhausted budget. Catch with
/// `std::panic::catch_unwind` and downcast to classify the abort.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BudgetExceeded {
    /// What ran out (e.g. `"fixpoint evaluations"`).
    pub resource: &'static str,
    /// The armed limit.
    pub limit: u64,
}

impl fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cell budget exceeded: over {} {}",
            self.limit, self.resource
        )
    }
}

#[derive(Clone, Copy)]
struct State {
    remaining: u64,
    limit: u64,
    deadline: Option<Instant>,
    wall_ms: u64,
    tick: u32,
}

const UNARMED: State = State {
    remaining: u64::MAX,
    limit: u64::MAX,
    deadline: None,
    wall_ms: 0,
    tick: 0,
};

thread_local! {
    static STATE: Cell<State> = const { Cell::new(UNARMED) };
}

/// An armed budget; dropping it restores whatever was armed before.
pub struct BudgetScope {
    prev: State,
}

impl BudgetScope {
    /// Arms this thread with an evaluation budget and/or a wall-clock
    /// deadline (`(instant, limit_ms)`, the latter only for the abort
    /// message). `None`/`None` arms an infinite scope, which still
    /// shields the caller from any stale outer scope.
    #[must_use]
    pub fn arm(max_evals: Option<u64>, deadline: Option<(Instant, u64)>) -> BudgetScope {
        let prev = STATE.get();
        STATE.set(State {
            remaining: max_evals.unwrap_or(u64::MAX),
            limit: max_evals.unwrap_or(u64::MAX),
            deadline: deadline.map(|(at, _)| at),
            wall_ms: deadline.map_or(0, |(_, ms)| ms),
            tick: 0,
        });
        BudgetScope { prev }
    }
}

impl Drop for BudgetScope {
    fn drop(&mut self) {
        STATE.set(self.prev);
    }
}

/// Charges one worklist evaluation against the armed budget (no-op when
/// unarmed). Aborts by unwinding with [`BudgetExceeded`] on exhaustion;
/// the wall-clock deadline is probed every 64 charges (and on the
/// first), keeping the `Instant::now` cost off the hot path.
#[inline]
pub(crate) fn charge_eval() {
    let mut s = STATE.get();
    if s.remaining == u64::MAX && s.deadline.is_none() {
        return;
    }
    if s.remaining == 0 {
        std::panic::panic_any(BudgetExceeded {
            resource: "fixpoint evaluations",
            limit: s.limit,
        });
    }
    if s.remaining != u64::MAX {
        s.remaining -= 1;
    }
    if let Some(at) = s.deadline {
        if s.tick.is_multiple_of(64) && Instant::now() >= at {
            std::panic::panic_any(BudgetExceeded {
                resource: "cell wall-clock ms",
                limit: s.wall_ms,
            });
        }
        s.tick = s.tick.wrapping_add(1);
    }
    STATE.set(s);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_charges_are_free_and_infallible() {
        for _ in 0..10_000 {
            charge_eval();
        }
    }

    #[test]
    fn exhaustion_unwinds_with_a_typed_payload() {
        let _scope = BudgetScope::arm(Some(3), None);
        charge_eval();
        charge_eval();
        charge_eval();
        let err = std::panic::catch_unwind(charge_eval).expect_err("fourth charge must abort");
        let payload = err
            .downcast::<BudgetExceeded>()
            .expect("typed BudgetExceeded payload");
        assert_eq!(payload.resource, "fixpoint evaluations");
        assert_eq!(payload.limit, 3);
    }

    #[test]
    fn scopes_restore_on_drop() {
        {
            let _outer = BudgetScope::arm(Some(1), None);
            {
                let _inner = BudgetScope::arm(None, None);
                for _ in 0..100 {
                    charge_eval(); // inner scope is infinite
                }
            }
            charge_eval(); // outer's single eval
            assert!(std::panic::catch_unwind(charge_eval).is_err());
        }
        charge_eval(); // unarmed again
    }

    #[test]
    fn expired_deadline_aborts_on_first_charge() {
        let _scope = BudgetScope::arm(None, Some((Instant::now(), 0)));
        let err = std::panic::catch_unwind(charge_eval).expect_err("deadline already passed");
        let payload = err.downcast::<BudgetExceeded>().expect("typed payload");
        assert_eq!(payload.resource, "cell wall-clock ms");
    }
}
