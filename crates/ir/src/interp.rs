//! Reference functional interpreter.
//!
//! The interpreter defines the ISA's *functional* semantics (no timing). It
//! serves three purposes:
//!
//! 1. **Semantics oracle** — the cycle-level simulator must follow exactly
//!    the same path and touch exactly the same addresses;
//! 2. **Flow-fact checker** — observed block counts must respect declared
//!    loop bounds (tested in `wcet-ir` and again end-to-end in `wcet-core`);
//! 3. **Trace source** — concrete address traces feed the cache-analysis
//!    soundness property tests (`must`-classified accesses must hit in every
//!    concrete run).

use std::collections::BTreeMap;
use std::fmt;

use crate::cfg::{BlockId, Terminator};
use crate::isa::{Addr, AluOp, Instr, Operand, NUM_REGS};
use crate::program::{AccessKind, Program};

/// Ordered record of one memory access performed by the interpreter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceAccess {
    /// Fetch / load / store.
    pub kind: AccessKind,
    /// Concrete byte address.
    pub addr: Addr,
    /// Block being executed.
    pub block: BlockId,
}

/// Result of a completed interpretation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecResult {
    /// Blocks in execution order (entry first).
    pub block_trace: Vec<BlockId>,
    /// Execution count per block.
    pub block_counts: BTreeMap<BlockId, u64>,
    /// Every memory access in program order (fetches included).
    pub accesses: Vec<TraceAccess>,
    /// Final register file.
    pub regs: [i64; NUM_REGS],
    /// Total executed instruction slots (terminators included).
    pub steps: u64,
}

impl ExecResult {
    /// Execution count of `block` (0 if never executed).
    #[must_use]
    pub fn count(&self, block: BlockId) -> u64 {
        self.block_counts.get(&block).copied().unwrap_or(0)
    }
}

/// Interpreter failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpError {
    /// The step limit was exceeded (non-termination guard).
    StepLimit {
        /// The limit that was hit.
        limit: u64,
    },
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::StepLimit { limit } => {
                write!(f, "execution exceeded {limit} instruction slots")
            }
        }
    }
}

impl std::error::Error for InterpError {}

/// ALU semantics shared by the interpreter and the cycle-level simulator.
#[must_use]
pub fn alu_eval(op: AluOp, lhs: i64, rhs: i64) -> i64 {
    match op {
        AluOp::Add => lhs.wrapping_add(rhs),
        AluOp::Sub => lhs.wrapping_sub(rhs),
        AluOp::And => lhs & rhs,
        AluOp::Or => lhs | rhs,
        AluOp::Xor => lhs ^ rhs,
        AluOp::Shl => lhs.wrapping_shl((rhs & 63) as u32),
        AluOp::Shr => lhs.wrapping_shr((rhs & 63) as u32),
        AluOp::Slt => i64::from(lhs < rhs),
        AluOp::Mul => lhs.wrapping_mul(rhs),
        // Division/remainder by zero are defined as 0 so no execution traps.
        AluOp::Div => {
            if rhs == 0 {
                0
            } else {
                lhs.wrapping_div(rhs)
            }
        }
        AluOp::Rem => {
            if rhs == 0 {
                0
            } else {
                lhs.wrapping_rem(rhs)
            }
        }
    }
}

/// Architectural state stepped by [`execute`]; also embedded in the
/// cycle-level simulator cores so both engines share one semantics.
#[derive(Debug, Clone)]
pub struct ArchState {
    /// Register file.
    pub regs: [i64; NUM_REGS],
    /// Data memory, word-addressed by exact byte address.
    pub mem: BTreeMap<Addr, i64>,
}

impl ArchState {
    /// Initial state for a program (registers and memory preloaded).
    #[must_use]
    pub fn for_program(program: &Program) -> ArchState {
        let mut mem = BTreeMap::new();
        for &(a, v) in program.init_mem() {
            mem.insert(a, v);
        }
        ArchState {
            regs: *program.init_regs(),
            mem,
        }
    }

    /// Reads `reg`.
    #[must_use]
    pub fn reg(&self, reg: crate::isa::Reg) -> i64 {
        self.regs[reg.index()]
    }

    /// Reads an operand.
    #[must_use]
    pub fn operand(&self, op: Operand) -> i64 {
        match op {
            Operand::Reg(r) => self.reg(r),
            Operand::Imm(i) => i,
        }
    }

    /// Reads memory (uninitialised words read as 0).
    #[must_use]
    pub fn load(&self, addr: Addr) -> i64 {
        self.mem.get(&addr).copied().unwrap_or(0)
    }

    /// Writes memory.
    pub fn store(&mut self, addr: Addr, value: i64) {
        self.mem.insert(addr, value);
    }

    /// Executes one non-terminator instruction, returning the concrete data
    /// address it touched, if any.
    pub fn step_instr(&mut self, ins: &Instr) -> Option<(AccessKind, Addr)> {
        match *ins {
            Instr::Alu { op, dst, lhs, rhs } => {
                let v = alu_eval(op, self.reg(lhs), self.operand(rhs));
                self.regs[dst.index()] = v;
                None
            }
            Instr::LoadImm { dst, imm } => {
                self.regs[dst.index()] = imm;
                None
            }
            Instr::Load { dst, mem } => {
                let idx = match mem {
                    crate::isa::MemRef::Indexed { index, .. } => self.reg(index),
                    crate::isa::MemRef::Static(_) => 0,
                };
                let addr = mem.effective_addr(idx);
                self.regs[dst.index()] = self.load(addr);
                Some((AccessKind::Load, addr))
            }
            Instr::Store { src, mem } => {
                let idx = match mem {
                    crate::isa::MemRef::Indexed { index, .. } => self.reg(index),
                    crate::isa::MemRef::Static(_) => 0,
                };
                let addr = mem.effective_addr(idx);
                let v = self.reg(src);
                self.store(addr, v);
                Some((AccessKind::Store, addr))
            }
            Instr::Yield | Instr::Nop => None,
        }
    }

    /// Evaluates a terminator, returning the successor block (or `None` for
    /// `Return`).
    #[must_use]
    pub fn step_terminator(&self, term: &Terminator) -> Option<BlockId> {
        match *term {
            Terminator::Jump(t) => Some(t),
            Terminator::Branch {
                cond,
                lhs,
                rhs,
                taken,
                not_taken,
            } => {
                if cond.eval(self.reg(lhs), self.operand(rhs)) {
                    Some(taken)
                } else {
                    Some(not_taken)
                }
            }
            Terminator::Return => None,
        }
    }
}

/// Executes `program` to completion.
///
/// # Errors
///
/// Returns [`InterpError::StepLimit`] if more than `step_limit` instruction
/// slots execute — treat as a non-terminating or wrongly-bounded program.
pub fn execute(program: &Program, step_limit: u64) -> Result<ExecResult, InterpError> {
    let mut st = ArchState::for_program(program);
    let cfg = program.cfg();
    let mut block = cfg.entry();
    let mut block_trace = Vec::new();
    let mut block_counts: BTreeMap<BlockId, u64> = BTreeMap::new();
    let mut accesses = Vec::new();
    let mut steps: u64 = 0;
    loop {
        block_trace.push(block);
        *block_counts.entry(block).or_insert(0) += 1;
        let blk = cfg.block(block);
        for (slot, ins) in blk.instrs().iter().enumerate() {
            steps += 1;
            if steps > step_limit {
                return Err(InterpError::StepLimit { limit: step_limit });
            }
            accesses.push(TraceAccess {
                kind: AccessKind::Fetch,
                addr: program.fetch_addr(block, slot),
                block,
            });
            if let Some((kind, addr)) = st.step_instr(ins) {
                accesses.push(TraceAccess { kind, addr, block });
            }
        }
        // Terminator slot.
        steps += 1;
        if steps > step_limit {
            return Err(InterpError::StepLimit { limit: step_limit });
        }
        accesses.push(TraceAccess {
            kind: AccessKind::Fetch,
            addr: program.fetch_addr(block, blk.fetch_slots() - 1),
            block,
        });
        match st.step_terminator(blk.terminator()) {
            Some(next) => block = next,
            None => break,
        }
    }
    Ok(ExecResult {
        block_trace,
        block_counts,
        accesses,
        regs: st.regs,
        steps,
    })
}

/// Checks that an execution respects the program's declared loop bounds:
/// for every loop, back-edge traversals ≤ bound × entries.
///
/// Returns the first violated header, or `None` if all bounds hold.
#[must_use]
pub fn check_loop_bounds(program: &Program, result: &ExecResult) -> Option<BlockId> {
    let loops = program.loops();
    for l in loops.loops() {
        let bound = program
            .flow()
            .bound(l.header)
            .expect("validated program has bounds for every loop");
        // Count back-edge traversals and entries from the block trace.
        let mut back = 0u64;
        let mut entries = 0u64;
        for w in result.block_trace.windows(2) {
            let (from, to) = (w[0], w[1]);
            if l.back_edges.iter().any(|e| e.from == from && e.to == to) {
                back += 1;
            }
            if l.entry_edges.iter().any(|e| e.from == from && e.to == to) {
                entries += 1;
            }
        }
        if program.cfg().entry() == l.header {
            entries += 1;
        }
        if back > bound.0.saturating_mul(entries.max(1)) {
            return Some(l.header);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CfgBuilder;
    use crate::cfg::Terminator;
    use crate::flow::{FlowFacts, LoopBound};
    use crate::isa::{r, AluOp, Cond, MemRef};
    use crate::program::Layout;

    /// for i in 0..5 { sum += i } — counted loop.
    fn counted_sum() -> Program {
        let mut cb = CfgBuilder::new();
        let entry = cb.add_block();
        let header = cb.add_block();
        let body = cb.add_block();
        let exit = cb.add_block();
        // r1 = i, r2 = sum
        cb.push(entry, Instr::LoadImm { dst: r(1), imm: 0 });
        cb.push(entry, Instr::LoadImm { dst: r(2), imm: 0 });
        cb.terminate(entry, Terminator::Jump(header));
        cb.terminate(
            header,
            Terminator::Branch {
                cond: Cond::Lt,
                lhs: r(1),
                rhs: Operand::Imm(5),
                taken: body,
                not_taken: exit,
            },
        );
        cb.push(
            body,
            Instr::Alu {
                op: AluOp::Add,
                dst: r(2),
                lhs: r(2),
                rhs: r(1).into(),
            },
        );
        cb.push(
            body,
            Instr::Alu {
                op: AluOp::Add,
                dst: r(1),
                lhs: r(1),
                rhs: 1.into(),
            },
        );
        cb.terminate(body, Terminator::Jump(header));
        cb.terminate(exit, Terminator::Return);
        let cfg = cb.build(entry).expect("valid");
        let mut facts = FlowFacts::new();
        facts.set_bound(header, LoopBound(5));
        Program::new("sum5", cfg, facts, Layout::default()).expect("valid program")
    }

    #[test]
    fn sums_zero_to_four() {
        let p = counted_sum();
        let res = execute(&p, 10_000).expect("terminates");
        assert_eq!(res.regs[2], 1 + 2 + 3 + 4);
        assert_eq!(res.count(BlockId::from_index(1)), 6); // header: 5 + exit check
        assert_eq!(res.count(BlockId::from_index(2)), 5); // body
        assert_eq!(check_loop_bounds(&p, &res), None);
    }

    #[test]
    fn step_limit_triggers() {
        let p = counted_sum();
        let err = execute(&p, 3).unwrap_err();
        assert_eq!(err, InterpError::StepLimit { limit: 3 });
    }

    #[test]
    fn memory_roundtrip() {
        let mut cb = CfgBuilder::new();
        let a = cb.add_block();
        cb.push(a, Instr::LoadImm { dst: r(1), imm: 77 });
        cb.push(
            a,
            Instr::Store {
                src: r(1),
                mem: MemRef::Static(Addr(0x9000)),
            },
        );
        cb.push(
            a,
            Instr::Load {
                dst: r(2),
                mem: MemRef::Static(Addr(0x9000)),
            },
        );
        cb.terminate(a, Terminator::Return);
        let cfg = cb.build(a).expect("valid");
        let p = Program::new("mem", cfg, FlowFacts::new(), Layout::default()).expect("valid");
        let res = execute(&p, 100).expect("terminates");
        assert_eq!(res.regs[2], 77);
        // fetch x4 (3 instrs + ret) + store + load accesses = 6.
        assert_eq!(res.accesses.len(), 6);
        assert_eq!(
            res.accesses
                .iter()
                .filter(|a| a.kind == AccessKind::Store)
                .count(),
            1
        );
    }

    #[test]
    fn indexed_access_wraps() {
        let mut cb = CfgBuilder::new();
        let a = cb.add_block();
        cb.push(a, Instr::LoadImm { dst: r(1), imm: 6 }); // index 6 mod 4 = 2
        cb.push(
            a,
            Instr::Load {
                dst: r(2),
                mem: MemRef::Indexed {
                    base: Addr(0x9000),
                    stride: 8,
                    count: 4,
                    index: r(1),
                },
            },
        );
        cb.terminate(a, Terminator::Return);
        let cfg = cb.build(a).expect("valid");
        let p = Program::new("idx", cfg, FlowFacts::new(), Layout::default())
            .expect("valid")
            .with_init_mem(Addr(0x9010), 123);
        let res = execute(&p, 100).expect("terminates");
        assert_eq!(res.regs[2], 123);
    }

    #[test]
    fn alu_div_by_zero_is_zero() {
        assert_eq!(alu_eval(AluOp::Div, 5, 0), 0);
        assert_eq!(alu_eval(AluOp::Rem, 5, 0), 0);
        assert_eq!(
            alu_eval(AluOp::Div, i64::MIN, -1),
            i64::MIN.wrapping_div(-1)
        );
    }
}
