//! Flow facts: loop bounds and infeasible-path constraints.
//!
//! These are the results of the paper's "flow analysis" step (§2.1). In a
//! production tool they come from source analysis \[10, 15, 21\]; here the
//! workload generator emits them alongside the code, and the reference
//! interpreter can check them (`tests` + `interp`).

use std::collections::BTreeMap;
use std::fmt;

use crate::cfg::{BlockId, Cfg, Edge};
use crate::loops::LoopForest;

/// Maximum number of back-edge traversals per entry of a loop.
///
/// A counted loop whose body runs `n` times per entry has bound `n`: its
/// header executes `n + 1` times, its back edge is taken `n` times.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LoopBound(pub u64);

impl fmt::Display for LoopBound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "≤{}", self.0)
    }
}

/// A pair of edges that can never both be taken in one execution
/// (mutually-exclusive paths); IPET adds `f(a) + f(b) <= max(count)` style
/// exclusion constraints for them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InfeasiblePair {
    /// First edge.
    pub a: Edge,
    /// Second edge.
    pub b: Edge,
}

/// Flow facts attached to a CFG.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FlowFacts {
    bounds: BTreeMap<BlockId, LoopBound>,
    /// Minimum back-edge traversals per entry (0 if unknown): the BCET
    /// side of the flow facts. Counted loops have `min == max`.
    min_bounds: BTreeMap<BlockId, u64>,
    infeasible: Vec<InfeasiblePair>,
}

/// Errors from [`FlowFacts::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlowError {
    /// A loop header carries no bound.
    MissingBound {
        /// The unbounded loop's header.
        header: BlockId,
    },
    /// A bound refers to a block that is not a loop header.
    NotAHeader {
        /// The offending block.
        block: BlockId,
    },
    /// An infeasible pair names an edge that does not exist.
    UnknownEdge {
        /// The offending edge.
        edge: Edge,
    },
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::MissingBound { header } => {
                write!(f, "loop headed by {header} has no bound")
            }
            FlowError::NotAHeader { block } => {
                write!(f, "bound attached to {block}, which heads no loop")
            }
            FlowError::UnknownEdge { edge } => {
                write!(f, "infeasible-pair constraint names unknown edge {edge}")
            }
        }
    }
}

impl std::error::Error for FlowError {}

impl FlowFacts {
    /// Creates empty flow facts (valid only for loop-free CFGs).
    #[must_use]
    pub fn new() -> FlowFacts {
        FlowFacts::default()
    }

    /// Sets the bound for the loop headed by `header`, replacing any
    /// previous bound.
    pub fn set_bound(&mut self, header: BlockId, bound: LoopBound) -> &mut Self {
        self.bounds.insert(header, bound);
        self
    }

    /// Declares that the loop headed by `header` iterates *exactly*
    /// `iters` times per entry (a counted loop): sets both the upper and
    /// the lower bound. The lower bound feeds BCET analysis.
    pub fn set_exact_bound(&mut self, header: BlockId, iters: u64) -> &mut Self {
        self.bounds.insert(header, LoopBound(iters));
        self.min_bounds.insert(header, iters);
        self
    }

    /// Sets only the minimum iteration count (per entry) of a loop.
    pub fn set_min_bound(&mut self, header: BlockId, min_iters: u64) -> &mut Self {
        self.min_bounds.insert(header, min_iters);
        self
    }

    /// The minimum back-edge traversals per entry of the loop headed by
    /// `header` (0 when unknown — always sound for a lower bound).
    #[must_use]
    pub fn min_bound(&self, header: BlockId) -> u64 {
        self.min_bounds.get(&header).copied().unwrap_or(0)
    }

    /// Declares two edges mutually exclusive within a single execution.
    pub fn add_infeasible_pair(&mut self, a: Edge, b: Edge) -> &mut Self {
        self.infeasible.push(InfeasiblePair { a, b });
        self
    }

    /// The bound of the loop headed by `header`, if declared.
    #[must_use]
    pub fn bound(&self, header: BlockId) -> Option<LoopBound> {
        self.bounds.get(&header).copied()
    }

    /// All declared bounds.
    #[must_use]
    pub fn bounds(&self) -> &BTreeMap<BlockId, LoopBound> {
        &self.bounds
    }

    /// All infeasible pairs.
    #[must_use]
    pub fn infeasible_pairs(&self) -> &[InfeasiblePair] {
        &self.infeasible
    }

    /// Checks the facts against a CFG and its loop forest.
    ///
    /// # Errors
    ///
    /// * [`FlowError::MissingBound`] if a loop has no bound — WCET would be
    ///   unbounded;
    /// * [`FlowError::NotAHeader`] if a bound names a non-header;
    /// * [`FlowError::UnknownEdge`] if an infeasible pair names an edge the
    ///   CFG does not contain.
    pub fn validate(&self, cfg: &Cfg, loops: &LoopForest) -> Result<(), FlowError> {
        for l in loops.loops() {
            if !self.bounds.contains_key(&l.header) {
                return Err(FlowError::MissingBound { header: l.header });
            }
        }
        for &h in self.bounds.keys() {
            if loops.headed_by(h).is_none() {
                return Err(FlowError::NotAHeader { block: h });
            }
        }
        for (&h, &min) in &self.min_bounds {
            match self.bounds.get(&h) {
                Some(b) if min <= b.0 => {}
                _ => return Err(FlowError::NotAHeader { block: h }),
            }
        }
        let edges: std::collections::BTreeSet<Edge> = cfg.edges().into_iter().collect();
        for p in &self.infeasible {
            for e in [p.a, p.b] {
                if !edges.contains(&e) {
                    return Err(FlowError::UnknownEdge { edge: e });
                }
            }
        }
        Ok(())
    }

    /// Worst-case execution count of a block: the product of the bounds of
    /// all enclosing loops (1 outside any loop).
    ///
    /// Used by the single-usage bypass analysis (paper §4.1, Hardy et al.)
    /// and by locking-content selection heuristics.
    ///
    /// # Panics
    ///
    /// Panics if an enclosing loop lacks a bound; call
    /// [`FlowFacts::validate`] first.
    #[must_use]
    pub fn max_block_count(&self, loops: &LoopForest, block: BlockId) -> u64 {
        let mut count: u64 = 1;
        for l in loops.containing(block) {
            let header = loops.loop_of(l).header;
            let b = self
                .bounds
                .get(&header)
                .unwrap_or_else(|| panic!("loop {header} has no bound"));
            // Header runs bound+1 times; body blocks run bound times. We use
            // the conservative bound+1 for the header itself.
            let factor = if block == header && loops.innermost(block) == Some(l) {
                b.0 + 1
            } else {
                b.0
            };
            count = count.saturating_mul(factor.max(1));
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CfgBuilder;
    use crate::cfg::Terminator;
    use crate::isa::{r, Cond, Operand};

    fn one_loop() -> (Cfg, BlockId) {
        let mut cb = CfgBuilder::new();
        let entry = cb.add_block();
        let header = cb.add_block();
        let body = cb.add_block();
        let exit = cb.add_block();
        cb.terminate(entry, Terminator::Jump(header));
        cb.terminate(
            header,
            Terminator::Branch {
                cond: Cond::Lt,
                lhs: r(1),
                rhs: Operand::Imm(10),
                taken: body,
                not_taken: exit,
            },
        );
        cb.terminate(body, Terminator::Jump(header));
        cb.terminate(exit, Terminator::Return);
        (cb.build(entry).expect("valid"), header)
    }

    #[test]
    fn validate_requires_bounds() {
        let (cfg, header) = one_loop();
        let loops = LoopForest::analyze(&cfg).expect("reducible");
        let mut facts = FlowFacts::new();
        assert_eq!(
            facts.validate(&cfg, &loops),
            Err(FlowError::MissingBound { header })
        );
        facts.set_bound(header, LoopBound(10));
        assert_eq!(facts.validate(&cfg, &loops), Ok(()));
    }

    #[test]
    fn validate_rejects_non_header_bound() {
        let (cfg, header) = one_loop();
        let loops = LoopForest::analyze(&cfg).expect("reducible");
        let mut facts = FlowFacts::new();
        facts.set_bound(header, LoopBound(10));
        facts.set_bound(cfg.entry(), LoopBound(3));
        assert_eq!(
            facts.validate(&cfg, &loops),
            Err(FlowError::NotAHeader { block: cfg.entry() })
        );
    }

    #[test]
    fn validate_rejects_unknown_edge() {
        let (cfg, header) = one_loop();
        let loops = LoopForest::analyze(&cfg).expect("reducible");
        let mut facts = FlowFacts::new();
        facts.set_bound(header, LoopBound(10));
        let bogus = Edge::new(cfg.entry(), cfg.entry());
        facts.add_infeasible_pair(bogus, bogus);
        assert!(matches!(
            facts.validate(&cfg, &loops),
            Err(FlowError::UnknownEdge { .. })
        ));
    }

    #[test]
    fn max_block_count_multiplies_nesting() {
        let (cfg, header) = one_loop();
        let loops = LoopForest::analyze(&cfg).expect("reducible");
        let mut facts = FlowFacts::new();
        facts.set_bound(header, LoopBound(10));
        // entry outside loop.
        assert_eq!(facts.max_block_count(&loops, cfg.entry()), 1);
        // header runs bound+1 times.
        assert_eq!(facts.max_block_count(&loops, header), 11);
        // body runs bound times.
        let body = cfg
            .block_ids()
            .find(|&b| {
                b != cfg.entry() && b != header && !cfg.successors(b).is_empty() && {
                    cfg.successors(b) == [header]
                }
            })
            .expect("body block");
        assert_eq!(facts.max_block_count(&loops, body), 10);
    }
}
