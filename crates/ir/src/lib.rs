//! # wcet-ir — program representation for static WCET analysis
//!
//! This crate is the foundation of the `wcet-toolkit` workspace, a Rust
//! reproduction of the systems surveyed in *"An Overview of Approaches
//! Towards the Timing Analysability of Parallel Architectures"* (Christine
//! Rochange, PPES 2011). It provides:
//!
//! * a small synthetic RISC ISA ([`isa`]) whose memory references are
//!   statically describable — the property WCET cache analysis needs;
//! * validated control-flow graphs ([`mod@cfg`]), natural-loop detection
//!   ([`loops`]) and flow facts ([`flow`]) — the paper's §2.1 "flow
//!   analysis" artefacts;
//! * complete [`program::Program`]s with code layout and data regions;
//! * a seeded workload generator ([`synth`]) standing in for the Mälardalen
//!   benchmarks used by the surveyed papers;
//! * a reference interpreter ([`interp`]) used as the semantics oracle for
//!   the cycle-level simulator and for flow-fact checking.
//!
//! ## Example
//!
//! ```
//! use wcet_ir::synth::{matmul, Placement};
//! use wcet_ir::interp::execute;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = matmul(4, Placement::default());
//! let run = execute(&program, 1_000_000)?;
//! assert!(run.steps > 0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod arena;
pub mod budget;
pub mod builder;
pub mod cfg;
pub mod fixpoint;
pub mod flow;
pub mod interp;
pub mod isa;
pub mod loops;
pub mod pretty;
pub mod program;
pub mod synth;
pub mod words;

pub use cfg::{BasicBlock, BlockId, Cfg, Edge, Terminator};
pub use flow::{FlowFacts, LoopBound};
pub use isa::{Addr, AluOp, Cond, Instr, MemRef, Operand, Reg};
pub use program::{AccessAddrs, AccessKind, AccessSite, DataRegion, Layout, Program};
