//! A bump arena for per-analysis scratch storage.
//!
//! Dataflow analyses allocate the same shapes over and over: one state
//! row table per analysis, one mask per compiled transfer step, one
//! scratch row per join. Allocating each from the global allocator puts
//! a malloc/free pair on the per-analysis path; the arena replaces that
//! with a pointer bump into one backing `Vec` that is **reset, not
//! freed** between analyses — after warm-up, an analysis performs no
//! heap allocation for any arena-owned storage.
//!
//! Handles are [`Slab`] index ranges rather than references, so the
//! arena stays safe Rust (`wcet-ir` is `#![forbid(unsafe_code)]`): the
//! borrow of the arena, not the slab, carries the lifetime, and callers
//! interleave shared reads ([`Arena::get`]) with single-slab writes
//! ([`Arena::get_mut`]) statement by statement. [`Arena::alloc_zeroed`]
//! default-fills the slab because reused backing memory still holds the
//! previous analysis' words.

/// A growable bump allocator over elements of `T` (words by default).
#[derive(Debug, Default)]
pub struct Arena<T = u64> {
    data: Vec<T>,
    top: usize,
    high_water: usize,
    resets: u64,
}

/// A handle to one allocation: an index range into the arena's backing
/// store. Copyable and trivially storable in side tables; only valid
/// for the arena that issued it, until its next [`Arena::reset`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Slab {
    start: usize,
    len: usize,
}

impl Slab {
    /// The number of elements in the slab.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the slab is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl<T: Copy + Default> Arena<T> {
    /// An empty arena.
    #[must_use]
    pub fn new() -> Arena<T> {
        Arena {
            data: Vec::new(),
            top: 0,
            high_water: 0,
            resets: 0,
        }
    }

    /// Allocates `len` elements, default-filled, by bumping the top
    /// pointer. Grows the backing store only when the high-water mark
    /// rises; steady-state allocation is a bump plus a fill.
    pub fn alloc_zeroed(&mut self, len: usize) -> Slab {
        let start = self.top;
        let end = start + len;
        if end > self.data.len() {
            // A growing slab may straddle the old boundary: `resize`
            // defaults only the appended tail, so the reused prefix
            // (dirty since the last reset) must be scrubbed explicitly.
            let old = self.data.len();
            self.data.resize(end, T::default());
            self.data[start..old].fill(T::default());
        } else {
            self.data[start..end].fill(T::default());
        }
        self.top = end;
        self.high_water = self.high_water.max(end);
        Slab { start, len }
    }

    /// Shared view of a slab.
    #[must_use]
    pub fn get(&self, slab: Slab) -> &[T] {
        &self.data[slab.start..slab.start + slab.len]
    }

    /// Mutable view of a slab.
    #[must_use]
    pub fn get_mut(&mut self, slab: Slab) -> &mut [T] {
        &mut self.data[slab.start..slab.start + slab.len]
    }

    /// Frees every slab at once by resetting the top pointer. The
    /// backing store is retained, so the next analysis bump-allocates
    /// into already-owned memory.
    pub fn reset(&mut self) {
        self.top = 0;
        self.resets += 1;
    }

    /// Peak bytes ever live at once (backing-store footprint).
    #[must_use]
    pub fn high_water_bytes(&self) -> u64 {
        (self.high_water * std::mem::size_of::<T>()) as u64
    }

    /// Number of [`Arena::reset`] calls (one per analysis, by
    /// convention).
    #[must_use]
    pub fn resets(&self) -> u64 {
        self.resets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_reset_reuse() {
        let mut a: Arena<u64> = Arena::new();
        let s1 = a.alloc_zeroed(3);
        a.get_mut(s1).copy_from_slice(&[1, 2, 3]);
        let s2 = a.alloc_zeroed(2);
        assert_eq!(a.get(s1), &[1, 2, 3]);
        assert_eq!(a.get(s2), &[0, 0]);
        assert_eq!(a.high_water_bytes(), 5 * 8);

        a.reset();
        assert_eq!(a.resets(), 1);
        // Reused memory is dirty until alloc_zeroed scrubs it.
        let s3 = a.alloc_zeroed(5);
        assert_eq!(a.get(s3), &[0; 5]);
        assert_eq!(a.high_water_bytes(), 5 * 8, "no growth on reuse");
    }

    #[test]
    fn straddling_slab_is_scrubbed() {
        // A slab that spans the old backing-store boundary after a reset
        // must be zeroed on BOTH sides of it: `resize` defaults only the
        // appended tail, and the reused prefix is dirty.
        let mut a: Arena<u64> = Arena::new();
        let s1 = a.alloc_zeroed(4);
        a.get_mut(s1).fill(u64::MAX);
        a.reset();
        let s2 = a.alloc_zeroed(2); // [0, 2): reused, scrubbed by fill
        assert_eq!(a.get(s2), &[0, 0]);
        let s3 = a.alloc_zeroed(4); // [2, 6): straddles the old len 4
        assert_eq!(a.get(s3), &[0; 4], "straddling slab must be all-zero");
    }

    #[test]
    fn zero_len_slab_is_fine() {
        let mut a: Arena<u64> = Arena::new();
        let s = a.alloc_zeroed(0);
        assert!(s.is_empty());
        assert_eq!(a.get(s), &[] as &[u64]);
    }
}
