//! Best-case execution time (BCET) lower bounds.
//!
//! Li et al.'s lifetime analysis (paper §4.1, experiment E03) needs
//! *lower* bounds on task start/finish times, which in turn need BCETs.
//! A sound BCET is the dual of IPET: **minimise** path cost over the flow
//! system, with minimum loop-iteration facts (`FlowFacts::min_bound`) as
//! lower-bound constraints and *best-case* block costs:
//!
//! * every access is charged its cheapest feasible outcome — the L1 hit
//!   path, except accesses the must/may analysis proves `ALWAYS_MISS`,
//!   which are charged the miss path at zero bus wait;
//! * execution latencies are exact; the pipeline fill is exact.
//!
//! Minimising over a superset of the feasible paths with per-access lower
//! bounds yields a value ≤ every concrete execution — tested end to end
//! against the simulator.

use wcet_cache::analysis::Classification;
use wcet_cache::multilevel::{analyze_hierarchy, HierarchyConfig};
use wcet_ilp::{solve_ilp, CmpOp, IlpConfig, LinExpr, LpModel, Rat, SolveStatus, VarId};
use wcet_ir::{BlockId, Edge, Program};
use wcet_pipeline::cost::{BlockCosts, CostInput};
use wcet_pipeline::timing::instr_time;

use crate::analyzer::{AnalysisError, Analyzer, TaskContext};
use crate::ipet::IpetError;

/// Best-case block costs: every access charged its cheapest outcome.
#[must_use]
pub fn best_block_costs(
    program: &Program,
    hierarchy: &wcet_cache::multilevel::HierarchyAnalysis,
    input: &CostInput,
) -> BlockCosts {
    let t = &input.timings;
    let base = program
        .cfg()
        .iter()
        .map(|(b, blk)| {
            let mut cost = 0u64;
            let mut sites = program.accesses(b).into_iter();
            let best_extra = |site: &wcet_ir::AccessSite, is_fetch: bool| -> u64 {
                let id = (site.block, site.seq);
                let l1 = if is_fetch {
                    &hierarchy.l1i
                } else {
                    &hierarchy.l1d
                };
                match l1.class(id) {
                    Some(Classification::AlwaysMiss) => {
                        // Guaranteed past L1; cheapest continuation: L2 hit
                        // if an L2 exists and the access *may* hit there,
                        // else memory at zero wait.
                        match (t.l2_hit, hierarchy.l2.as_ref().and_then(|a| a.class(id))) {
                            (Some(_), Some(Classification::AlwaysMiss)) => t.mem_extra(0),
                            (Some(_), _) => t.l2_hit_extra(),
                            (None, _) => t.mem_extra(0),
                        }
                    }
                    // AH / PS / NC / unknown: a hit is feasible.
                    _ => t.l1_hit_extra(),
                }
            };
            let blk_instrs = blk.instrs();
            for ins in blk_instrs {
                let fetch = sites.next().expect("fetch site per slot");
                let fe = best_extra(&fetch, true);
                let de = if ins.mem_ref().is_some() {
                    let d = sites.next().expect("data site");
                    best_extra(&d, false)
                } else {
                    0
                };
                // Best case is the single-threaded time even on SMT cores
                // (slots may align perfectly), so no K-stretch here.
                cost += instr_time(ins, fe, de);
            }
            let term = sites.next().expect("terminator fetch");
            cost += 1 + best_extra(&term, true);
            (b, cost)
        })
        .collect();
    BlockCosts {
        base,
        loop_entry_extras: std::collections::BTreeMap::new(),
        startup: input.pipeline.startup_cycles(),
    }
}

/// Minimum-path IPET: minimise `Σ cost_b · x_b` subject to flow
/// conservation, `f_back ≥ min · f_entry` and `f_back ≤ max · f_entry`.
///
/// # Errors
///
/// Returns [`IpetError`] if the flow system is infeasible or the solver
/// gives up.
pub fn bcet_ipet(program: &Program, costs: &BlockCosts, ilp: IlpConfig) -> Result<u64, IpetError> {
    let cfg = program.cfg();
    let mut model = LpModel::new();
    let x: std::collections::BTreeMap<BlockId, VarId> = cfg
        .block_ids()
        .map(|b| (b, model.add_int_var(format!("x_{b}"))))
        .collect();
    let f: std::collections::BTreeMap<Edge, VarId> = cfg
        .edges()
        .into_iter()
        .map(|e| (e, model.add_int_var(format!("f_{e}"))))
        .collect();
    let f_entry = model.add_int_var("f_entry");
    let f_exit: std::collections::BTreeMap<BlockId, VarId> = cfg
        .exits()
        .iter()
        .map(|&b| (b, model.add_int_var(format!("fx_{b}"))))
        .collect();
    model.add_constraint(LinExpr::new().with_term(f_entry, 1), CmpOp::Eq, 1);
    for b in cfg.block_ids() {
        let mut inflow = LinExpr::new();
        for &p in cfg.predecessors(b) {
            inflow.add_term(f[&Edge::new(p, b)], 1);
        }
        if b == cfg.entry() {
            inflow.add_term(f_entry, 1);
        }
        inflow.add_term(x[&b], -1);
        model.add_constraint(inflow, CmpOp::Eq, 0);
        let mut outflow = LinExpr::new();
        for &s in cfg.successors(b) {
            outflow.add_term(f[&Edge::new(b, s)], 1);
        }
        if let Some(&fx) = f_exit.get(&b) {
            outflow.add_term(fx, 1);
        }
        outflow.add_term(x[&b], -1);
        model.add_constraint(outflow, CmpOp::Eq, 0);
    }
    let loops = program.loops();
    for l in loops.loops() {
        let max = program.flow().bound(l.header).expect("validated").0;
        let min = program.flow().min_bound(l.header);
        let mut upper = LinExpr::new();
        let mut lower = LinExpr::new();
        for e in &l.back_edges {
            upper.add_term(f[e], 1);
            lower.add_term(f[e], 1);
        }
        for e in &l.entry_edges {
            upper.add_term(f[e], -Rat::from(max));
            lower.add_term(f[e], -Rat::from(min));
        }
        if l.header == cfg.entry() {
            upper.add_term(f_entry, -Rat::from(max));
            lower.add_term(f_entry, -Rat::from(min));
        }
        model.add_constraint(upper, CmpOp::Le, 0);
        model.add_constraint(lower, CmpOp::Ge, 0);
    }
    // Minimise = maximise the negated objective.
    let mut obj = LinExpr::new();
    for (b, &v) in &x {
        obj.add_term(v, -Rat::from(costs.cost(*b)));
    }
    model.set_objective(obj);
    let (solution, _) = solve_ilp(&model, ilp).map_err(IpetError::Ilp)?;
    match solution.status {
        SolveStatus::Infeasible => return Err(IpetError::Infeasible),
        SolveStatus::Unbounded => return Err(IpetError::Unbounded),
        SolveStatus::Optimal => {}
    }
    let min_path = (-solution.objective).floor().max(0);
    Ok(u64::try_from(min_path).unwrap_or(0) + costs.startup)
}

impl Analyzer {
    /// A sound BCET lower bound for the task on `(core, thread)`:
    /// best-case block costs (hits wherever a hit is feasible, zero bus
    /// waits) and minimum loop iterations.
    ///
    /// # Errors
    ///
    /// See [`AnalysisError`].
    pub fn bcet(
        &self,
        program: &Program,
        core: usize,
        thread: usize,
    ) -> Result<u64, AnalysisError> {
        let ctx: TaskContext = self.task_context(core, thread, Vec::new(), Some(Some(0)))?;
        let hier_cfg = HierarchyConfig {
            l1i: ctx.l1i,
            l1d: ctx.l1d,
            l2: ctx.l2.clone(),
        };
        let hierarchy = analyze_hierarchy(program, &hier_cfg);
        let input = CostInput {
            pipeline: self.machine().pipeline,
            timings: ctx.timings,
            bus_wait_bound: Some(0),
            mode: ctx.mode,
        };
        let costs = best_block_costs(program, &hierarchy, &input);
        Ok(bcet_ipet(program, &costs, wcet_ilp::IlpConfig::default())?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::run_machine;
    use wcet_ir::synth::{self, Placement};
    use wcet_sim::config::MachineConfig;

    #[test]
    fn bcet_below_observation_below_wcet() {
        let m = MachineConfig::symmetric(1);
        let an = Analyzer::new(m.clone());
        for p in [
            synth::matmul(5, Placement::slot(0)),
            synth::fir(4, 12, Placement::slot(0)),
            synth::crc(24, Placement::slot(0)),
            synth::bsort(8, Placement::slot(0)),
            synth::single_path(4, 20, Placement::slot(0)),
        ] {
            let bcet = an.bcet(&p, 0, 0).expect("analyses");
            let wcet = an.wcet_solo(&p, 0, 0).expect("analyses").wcet;
            let obs = run_machine(&m, vec![(0, 0, p.clone())], 100_000_000)
                .expect("runs")
                .cycles(0, 0);
            assert!(
                bcet <= obs,
                "{}: BCET {bcet} exceeds observation {obs}",
                p.name()
            );
            assert!(obs <= wcet, "{}: observation above WCET", p.name());
            assert!(bcet > 0);
        }
    }

    #[test]
    fn exact_loops_make_bcet_meaningful() {
        // With exact (min == max) counted loops the BCET must be a decent
        // fraction of the observation, not a trivial zero-iteration bound.
        let m = MachineConfig::symmetric(1);
        let an = Analyzer::new(m.clone());
        let p = synth::single_path(4, 20, Placement::slot(0));
        let bcet = an.bcet(&p, 0, 0).expect("analyses");
        let obs = run_machine(&m, vec![(0, 0, p)], 100_000_000)
            .expect("runs")
            .cycles(0, 0);
        assert!(bcet * 4 >= obs, "BCET {bcet} too weak vs observation {obs}");
    }

    #[test]
    fn bcet_never_exceeds_wcet_on_random_programs() {
        let m = MachineConfig::symmetric(1);
        let an = Analyzer::new(m);
        for seed in 0..15u64 {
            let p = synth::random_program(seed, synth::RandomParams::default(), Placement::slot(0));
            let bcet = an.bcet(&p, 0, 0).expect("analyses");
            let wcet = an.wcet_solo(&p, 0, 0).expect("analyses").wcet;
            assert!(bcet <= wcet, "seed {seed}: BCET {bcet} > WCET {wcet}");
        }
    }
}
