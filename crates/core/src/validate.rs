//! Soundness harness: run the cycle-level machine and compare observed
//! times against analysed bounds.
//!
//! This is the toolkit's ground-truth check — "it is absolutely unsafe to
//! ignore the effects of resource sharing when computing WCETs" (paper
//! §2.2) becomes a *measured* statement: solo bounds get violated on
//! shared hardware (experiment E12), isolation bounds never do.

use wcet_ir::Program;
use wcet_sim::config::{MachineConfig, SimError};
use wcet_sim::machine::{Machine, RunResult, SkipStats};

/// One observation of a task on a machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Observation {
    /// Observed execution time of the task under test.
    pub observed: u64,
    /// The analysed bound it is compared against.
    pub bound: u64,
}

impl Observation {
    /// True if the bound held.
    #[must_use]
    pub fn sound(&self) -> bool {
        self.observed <= self.bound
    }

    /// Bound / observed (≥ 1 when sound); a tightness measure.
    #[must_use]
    pub fn ratio(&self) -> f64 {
        self.bound as f64 / self.observed.max(1) as f64
    }
}

/// Builds a machine, loads `(core, thread, program)` triples, runs to
/// completion.
///
/// # Errors
///
/// Propagates [`SimError`].
pub fn run_machine(
    config: &MachineConfig,
    loads: Vec<(usize, usize, Program)>,
    cycle_limit: u64,
) -> Result<RunResult, SimError> {
    let mut m = Machine::new(config.clone());
    for (core, thread, program) in loads {
        m.load(core, thread, program)?;
    }
    m.run(cycle_limit)
}

/// [`run_machine`], stopped as soon as every `watched` slot has retired.
/// Unwatched co-runners keep interfering until that point; every metric
/// attributable to a watched thread (its completion cycle, its thread
/// stats, its requester slot's bus waits) is byte-identical to a
/// run-to-completion — the machine is deterministic and a finished
/// thread's metrics are immutable. Machine-wide aggregates (makespan,
/// cache totals) and unwatched threads' stats reflect only the
/// truncated run; use [`run_machine`] to read those. Pure wall-clock
/// optimization for observation runs whose interference sources far
/// outlive the tasks under test.
///
/// # Errors
///
/// Propagates [`SimError`].
pub fn run_machine_watched(
    config: &MachineConfig,
    loads: Vec<(usize, usize, Program)>,
    watched: &[(usize, usize)],
    cycle_limit: u64,
) -> Result<RunResult, SimError> {
    let mut m = Machine::new(config.clone());
    for (core, thread, program) in loads {
        m.load(core, thread, program)?;
    }
    m.run_watched(cycle_limit, watched)
}

/// One scenario replay's observations plus its simulation effort.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidationRun {
    /// Per-watched-slot observations, in `watched` order.
    pub observations: Vec<Observation>,
    /// Event-skipping effort of the replay (idle cycles fast-forwarded).
    pub skip: SkipStats,
}

/// Runs *all* `loads` of one concrete scenario together in a single
/// simulation and observes each `watched` slot `(core, thread, bound)`
/// against its own analysed bound.
///
/// This is the scenario-matrix validation primitive: one simulation run
/// yields a soundness/tightness verdict per analysed cell row, with
/// every loaded task acting as a co-runner of every other — including
/// co-runners that were loaded but not analysed (interference sources).
///
/// # Errors
///
/// Propagates [`SimError`].
pub fn observe_all(
    config: &MachineConfig,
    loads: Vec<(usize, usize, Program)>,
    watched: &[(usize, usize, u64)],
    cycle_limit: u64,
) -> Result<ValidationRun, SimError> {
    let slots: Vec<(usize, usize)> = watched.iter().map(|&(c, t, _)| (c, t)).collect();
    let result = run_machine_watched(config, loads, &slots, cycle_limit)?;
    Ok(ValidationRun {
        observations: watched
            .iter()
            .map(|&(core, thread, bound)| Observation {
                observed: result.cycles(core, thread),
                bound,
            })
            .collect(),
        skip: result.skip,
    })
}

/// Runs the task under test at `(core, thread)` together with co-runners,
/// returning its observation against `bound`.
///
/// # Errors
///
/// Propagates [`SimError`].
pub fn observe(
    config: &MachineConfig,
    task: (usize, usize, Program),
    corunners: Vec<(usize, usize, Program)>,
    bound: u64,
    cycle_limit: u64,
) -> Result<Observation, SimError> {
    let (core, thread, program) = task;
    let mut loads = vec![(core, thread, program)];
    loads.extend(corunners);
    let result = run_machine_watched(config, loads, &[(core, thread)], cycle_limit)?;
    Ok(Observation {
        observed: result.cycles(core, thread),
        bound,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::Analyzer;
    use wcet_ir::synth::{crc, fir, matmul, pointer_chase, pointer_chase_stride, Placement};

    #[test]
    fn isolated_bound_holds_under_adversarial_corunners() {
        let machine = MachineConfig::symmetric(4);
        let an = Analyzer::new(machine.clone());
        let victim = fir(4, 8, Placement::slot(0));
        let bound = an.wcet_isolated(&victim, 0, 0).expect("analyses").wcet;
        // Bus-hammering, cache-polluting co-runners.
        let obs = observe(
            &machine,
            (0, 0, victim),
            vec![
                (1, 0, pointer_chase(64, 300, Placement::slot(1))),
                (2, 0, matmul(10, Placement::slot(2))),
                (3, 0, crc(64, Placement::slot(3))),
            ],
            bound,
            100_000_000,
        )
        .expect("runs");
        assert!(
            obs.sound(),
            "isolation bound violated: {} > {}",
            obs.observed,
            obs.bound
        );
    }

    #[test]
    fn solo_bound_holds_alone() {
        let machine = MachineConfig::symmetric(2);
        let an = Analyzer::new(machine.clone());
        let p = crc(24, Placement::slot(0));
        let bound = an.wcet_solo(&p, 0, 0).expect("analyses").wcet;
        let obs = observe(&machine, (0, 0, p), vec![], bound, 100_000_000).expect("runs");
        assert!(
            obs.sound(),
            "solo bound must hold alone: {} > {}",
            obs.observed,
            obs.bound
        );
        assert!(obs.ratio() >= 1.0);
    }

    #[test]
    fn observe_all_matches_per_task_observations() {
        let machine = MachineConfig::symmetric(2);
        let an = Analyzer::new(machine.clone());
        let a = fir(4, 8, Placement::slot(0));
        let b = crc(24, Placement::slot(1));
        let ba = an.wcet_isolated(&a, 0, 0).expect("analyses").wcet;
        let bb = an.wcet_isolated(&b, 1, 0).expect("analyses").wcet;
        let all = observe_all(
            &machine,
            vec![(0, 0, a.clone()), (1, 0, b.clone())],
            &[(0, 0, ba), (1, 0, bb)],
            100_000_000,
        )
        .expect("runs");
        assert_eq!(all.observations.len(), 2);
        assert!(all.observations.iter().all(Observation::sound));
        // The joint run is one simulation; each task's observation equals
        // what `observe` reports with the other task as its co-runner.
        let solo_a = observe(&machine, (0, 0, a), vec![(1, 0, b)], ba, 100_000_000).expect("runs");
        assert_eq!(all.observations[0], solo_a);
    }

    #[test]
    fn oversubscribed_locked_lines_stay_sound() {
        // More locked lines than a tiny L2 has ways: the machine pins
        // only the first `ways` per set (sorted order), so the analysis
        // must neither count overflow lines as always-hit nor leave full
        // associativity to the unlocked lines.
        let mut machine = MachineConfig::symmetric(1);
        {
            let l2 = machine.l2.as_mut().expect("has L2");
            l2.cache = wcet_cache::config::CacheConfig::new(4, 2, 32, 4).expect("valid");
            // 3 lines per set on a 2-way cache: one overflow line per set.
            for set in 0..4u64 {
                for way in 0..3u64 {
                    l2.locked
                        .insert(wcet_cache::config::LineAddr(way * 4 + set));
                }
            }
        }
        let an = Analyzer::new(machine.clone());
        let p = crc(24, Placement::slot(0));
        let rep = an.wcet_isolated(&p, 0, 0).expect("analyses");
        let obs = observe(&machine, (0, 0, p), vec![], rep.wcet, 100_000_000).expect("runs");
        assert!(
            obs.sound(),
            "oversubscribed locks broke soundness: {} > {}",
            obs.observed,
            obs.bound
        );
    }

    #[test]
    fn solo_bound_can_break_under_sharing() {
        // E12 in miniature: a memory-bound victim (pointer ring larger
        // than the whole L2, so every hop goes over the shared bus),
        // analysed "solo" (which assumes zero bus waiting), then run
        // against three equally bus-hungry co-runners. The unaccounted
        // arbitration waits break the bound — the paper's §2.2 claim,
        // measured.
        let mut machine = MachineConfig::symmetric(4);
        // A fast memory makes the *bus* the bottleneck: four blocking
        // cores can then genuinely saturate it.
        machine.memory = wcet_arbiter::MemoryKind::Predictable { latency: 8 };
        let an = Analyzer::new(machine.clone());
        let victim = pointer_chase_stride(4_096, 400, 32, Placement::slot(0));
        let bound = an.wcet_solo(&victim, 0, 0).expect("analyses").wcet;
        let obs = observe(
            &machine,
            (0, 0, victim),
            vec![
                (
                    1,
                    0,
                    pointer_chase_stride(4_096, 4_000, 32, Placement::slot(1)),
                ),
                (
                    2,
                    0,
                    pointer_chase_stride(4_096, 4_000, 32, Placement::slot(2)),
                ),
                (
                    3,
                    0,
                    pointer_chase_stride(4_096, 4_000, 32, Placement::slot(3)),
                ),
            ],
            bound,
            200_000_000,
        )
        .expect("runs");
        assert!(
            !obs.sound(),
            "expected the unsafe solo bound to break: {} <= {}",
            obs.observed,
            obs.bound
        );
    }
}
