//! The batch analysis engine: memoized intermediates + parallel fan-out.
//!
//! [`crate::analyzer::Analyzer`] recomputes every intermediate — cache
//! hierarchy fixpoints ([`wcet_cache::multilevel::analyze_hierarchy`]),
//! block costs ([`wcet_pipeline::cost::block_costs`]) and the IPET solve —
//! on every call. Experiment drivers ask for the same task under several
//! modes, several co-runner sets and several machines, so whole fixpoints
//! are recomputed dozens of times; and a task *set* is embarrassingly
//! parallel across tasks.
//!
//! [`AnalysisEngine`] fixes both:
//!
//! * **Memoization** — shared intermediates are cached keyed by
//!   `(task fingerprint, effective cache geometry, interference)`:
//!   hierarchy fixpoints by `HierKey`-equivalence, block costs and IPET
//!   bounds additionally by the bus bound and core mode. Two modes that
//!   induce the same effective context (e.g. `solo` and `isolated` on a
//!   partitioned L2) share everything but the report label.
//! * **Parallelism** — [`AnalysisEngine::analyze_batch`] fans jobs out
//!   across `std::thread::scope` workers (default: one per available
//!   core), and [`AnalysisEngine::analyze_task_set`] does the same for a
//!   whole [`wcet_sched::TaskSet`] in one call.
//!
//! Results are byte-identical to the sequential [`Analyzer`] path: every
//! memoized function is deterministic in its key.

use std::borrow::Borrow;
use std::collections::HashMap;
use std::hash::Hash;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

use wcet_cache::analysis::{AnalysisInput, CacheAnalysis};
use wcet_cache::config::{CacheConfig, LineAddr};
use wcet_cache::multilevel::{analyze_hierarchy, HierarchyAnalysis, HierarchyConfig};
use wcet_ilp::SolveStats;
use wcet_ir::fixpoint::FixpointStats;
use wcet_ir::Program;
use wcet_pipeline::cost::{block_costs, BlockCosts, CoreMode, CostInput};
use wcet_pipeline::{MemTimings, PipelineConfig};
use wcet_sched::TaskSet;
use wcet_sim::config::MachineConfig;

use crate::analyzer::{build_report, AnalysisError, Analyzer, TaskContext, WcetReport};
use crate::fingerprint::{debug_fingerprint, program_fingerprint};
use crate::ipet::{wcet_ipet_ctx, IpetOptions, SolveContext, WcetBound};
use crate::mode::AnalysisMode;

/// Poison-tolerant lock accessors. A supervised campaign cell that
/// panics is caught at its cell boundary, but the unwind may have
/// crossed a thread that once held one of the shared memo/stats locks —
/// and every critical section below is a pure insert/absorb that cannot
/// unwind half-way, so the guarded data is consistent even with the
/// poison flag set. Recover instead of wedging every other worker.
fn lock_ok<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

fn read_ok<T>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(PoisonError::into_inner)
}

fn write_ok<T>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(PoisonError::into_inner)
}

/// Memo key of one hierarchy fixpoint: the task's content fingerprint plus
/// everything [`analyze_hierarchy`] reads from the context. Deliberately
/// machine-independent (no arbiter, bus or memory timing members), so one
/// [`MemoDomain`] can serve engines over many machines.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct HierKey {
    task: (u64, u64),
    l1i: CacheConfig,
    l1d: CacheConfig,
    l2: Option<L2Key>,
}

/// Memo key of the private-L1 half of a hierarchy: interference sweeps
/// vary only the L2 input, so the L1 fixpoints are shared across every
/// [`HierKey`] that agrees on this prefix.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct L1Key {
    task: (u64, u64),
    l1i: CacheConfig,
    l1d: CacheConfig,
}

/// The L2 side of a [`HierKey`]: effective geometry, locking, bypass and
/// the mode-dependent interference shift.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct L2Key {
    cache: CacheConfig,
    set_ways: Option<Vec<u32>>,
    locked: Vec<LineAddr>,
    bypass: Vec<LineAddr>,
    shift: Vec<u32>,
}

impl L2Key {
    fn of(input: &AnalysisInput) -> L2Key {
        L2Key {
            cache: input.cache,
            set_ways: input.set_ways.clone(),
            locked: input.locked.iter().copied().collect(),
            bypass: input.bypass.iter().copied().collect(),
            shift: input.interference_shift.clone(),
        }
    }
}

/// Memo key of block costs: the hierarchy plus every remaining cost
/// input. Timing and pipeline members make the key machine-independent
/// (a [`MemoDomain`] shared across engines over different machines never
/// aliases two distinct cost tables); the hierarchy half rides behind an
/// `Arc` so cloning a key into the table is cheap.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CostKey {
    hier: Arc<HierKey>,
    bus_wait_bound: Option<u64>,
    mode: CoreMode,
    timings: MemTimings,
    pipeline: PipelineConfig,
}

/// Memo key of IPET bounds: the cost key plus the IPET options'
/// fingerprint (options change the solve, so engines with different
/// options sharing one [`MemoDomain`] must not alias bounds).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct BoundKey {
    cost: CostKey,
    options: (u64, u64),
}

/// Monotonic hit/miss/eviction counters for one memo table.
#[derive(Debug, Default)]
struct TableStats {
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl TableStats {
    fn hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    fn miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    fn evict(&self) {
        self.evictions.fetch_add(1, Ordering::Relaxed);
    }
}

/// One resident memo entry plus its LRU stamp: the domain-clock tick of
/// the last hit or insert. An atomic so the hot read path can refresh
/// recency under the table's *read* lock.
#[derive(Debug)]
struct Stamped<V> {
    value: V,
    last_used: AtomicU64,
}

/// One memo table: a keyed map of deterministic intermediates plus its
/// counters. Lookups refresh the entry's LRU stamp; inserts evict the
/// least-recently-used entries whenever the owning [`MemoDomain`] caps
/// the table (see [`MemoDomain::with_budget`]).
#[derive(Debug)]
struct MemoTable<K, V> {
    map: RwLock<HashMap<K, Stamped<V>>>,
    stats: TableStats,
}

impl<K, V> Default for MemoTable<K, V> {
    fn default() -> MemoTable<K, V> {
        MemoTable {
            map: RwLock::new(HashMap::new()),
            stats: TableStats::default(),
        }
    }
}

impl<K: Eq + Hash + Clone, V: Clone> MemoTable<K, V> {
    /// Probes the table; a hit counts and refreshes the LRU stamp.
    fn lookup<Q>(&self, key: &Q, clock: &AtomicU64) -> Option<V>
    where
        K: Borrow<Q>,
        Q: Eq + Hash + ?Sized,
    {
        let map = read_ok(&self.map);
        let entry = map.get(key)?;
        self.stats.hit();
        let stamp = clock.fetch_add(1, Ordering::Relaxed) + 1;
        entry.last_used.store(stamp, Ordering::Relaxed);
        Some(entry.value.clone())
    }

    /// Counts a miss and inserts `computed` with `or_insert` semantics: a
    /// racing insert wins and its value is returned (every memoized
    /// function is deterministic in its key, so either copy is correct).
    /// When `budget` caps the table, least-recently-used entries are then
    /// evicted down to the cap; the entry just touched carries the
    /// freshest stamp and is never the victim.
    fn insert(&self, key: K, computed: V, clock: &AtomicU64, budget: Option<NonZeroUsize>) -> V {
        self.stats.miss();
        let stamp = clock.fetch_add(1, Ordering::Relaxed) + 1;
        let mut map = write_ok(&self.map);
        let value = match map.entry(key) {
            std::collections::hash_map::Entry::Occupied(slot) => {
                slot.get().last_used.store(stamp, Ordering::Relaxed);
                slot.get().value.clone()
            }
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(Stamped {
                    value: computed.clone(),
                    last_used: AtomicU64::new(stamp),
                });
                computed
            }
        };
        if let Some(cap) = budget {
            // O(len) victim scan per over-budget insert: budgets exist to
            // keep `len` small, so a scan beats maintaining an intrusive
            // recency list under the same write lock.
            while map.len() > cap.get() {
                let victim = map
                    .iter()
                    .min_by_key(|(_, s)| s.last_used.load(Ordering::Relaxed))
                    .map(|(k, _)| k.clone());
                let Some(victim) = victim else { break };
                map.remove(&victim);
                self.stats.evict();
            }
        }
        value
    }

    fn len(&self) -> usize {
        read_ok(&self.map).len()
    }
}

/// A point-in-time view of the engine's memoization effectiveness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemoStats {
    /// Cache-hierarchy fixpoints served from the memo.
    pub hierarchy_hits: u64,
    /// Cache-hierarchy fixpoints computed.
    pub hierarchy_misses: u64,
    /// Private-L1 fixpoint pairs served from the memo (hierarchy misses
    /// that still reused both L1 halves).
    pub l1_hits: u64,
    /// Private-L1 fixpoint pairs computed.
    pub l1_misses: u64,
    /// Block-cost tables served from the memo.
    pub cost_hits: u64,
    /// Block-cost tables computed.
    pub cost_misses: u64,
    /// IPET bounds served from the memo.
    pub bound_hits: u64,
    /// IPET bounds solved.
    pub bound_misses: u64,
    /// Hierarchy fixpoints evicted under a [`MemoDomain::with_budget`]
    /// cap (zero on unbounded domains).
    pub hierarchy_evictions: u64,
    /// Private-L1 fixpoint pairs evicted under a budget cap.
    pub l1_evictions: u64,
    /// Block-cost tables evicted under a budget cap.
    pub cost_evictions: u64,
    /// IPET bounds evicted under a budget cap.
    pub bound_evictions: u64,
    /// Hierarchy fixpoints reused straight from a neighbouring cell's
    /// [`TaskArtifacts`] — no re-fingerprinting, no key construction, no
    /// table probe (see [`AnalysisEngine::analyze_prior`]).
    pub neighbor_hits: u64,
}

impl MemoStats {
    /// Total lookups across all tables (neighbour reuses count: they
    /// answer the same question a hierarchy probe would).
    #[must_use]
    pub fn lookups(&self) -> u64 {
        self.hierarchy_hits
            + self.hierarchy_misses
            + self.l1_hits
            + self.l1_misses
            + self.cost_hits
            + self.cost_misses
            + self.bound_hits
            + self.bound_misses
            + self.neighbor_hits
    }

    /// Total hits across all tables, neighbour reuses included.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hierarchy_hits + self.l1_hits + self.cost_hits + self.bound_hits + self.neighbor_hits
    }

    /// Total evictions across all tables (always zero on unbounded
    /// domains).
    #[must_use]
    pub fn evictions(&self) -> u64 {
        self.hierarchy_evictions + self.l1_evictions + self.cost_evictions + self.bound_evictions
    }

    /// The counters accumulated since `baseline` was captured from the
    /// same domain — the per-request delta a long-lived service reports.
    /// Saturating, so a baseline from another domain never underflows.
    #[must_use]
    pub fn since(&self, baseline: &MemoStats) -> MemoStats {
        MemoStats {
            hierarchy_hits: self.hierarchy_hits.saturating_sub(baseline.hierarchy_hits),
            hierarchy_misses: self
                .hierarchy_misses
                .saturating_sub(baseline.hierarchy_misses),
            l1_hits: self.l1_hits.saturating_sub(baseline.l1_hits),
            l1_misses: self.l1_misses.saturating_sub(baseline.l1_misses),
            cost_hits: self.cost_hits.saturating_sub(baseline.cost_hits),
            cost_misses: self.cost_misses.saturating_sub(baseline.cost_misses),
            bound_hits: self.bound_hits.saturating_sub(baseline.bound_hits),
            bound_misses: self.bound_misses.saturating_sub(baseline.bound_misses),
            hierarchy_evictions: self
                .hierarchy_evictions
                .saturating_sub(baseline.hierarchy_evictions),
            l1_evictions: self.l1_evictions.saturating_sub(baseline.l1_evictions),
            cost_evictions: self.cost_evictions.saturating_sub(baseline.cost_evictions),
            bound_evictions: self
                .bound_evictions
                .saturating_sub(baseline.bound_evictions),
            neighbor_hits: self.neighbor_hits.saturating_sub(baseline.neighbor_hits),
        }
    }
}

/// One unit of batch work: a task placed at `(core, thread)`, analysed
/// under `mode`.
#[derive(Clone, Copy)]
pub struct Job<'a> {
    /// The task.
    pub program: &'a Program,
    /// Core index in the engine's machine.
    pub core: usize,
    /// Hardware-thread index within the core.
    pub thread: usize,
    /// The approach family to apply.
    pub mode: &'a dyn AnalysisMode,
}

impl<'a> Job<'a> {
    /// A job at thread slot 0 of `core`.
    #[must_use]
    pub fn new(program: &'a Program, core: usize, mode: &'a dyn AnalysisMode) -> Job<'a> {
        Job {
            program,
            core,
            thread: 0,
            mode,
        }
    }
}

impl std::fmt::Debug for Job<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Job")
            .field("program", &self.program.name())
            .field("core", &self.core)
            .field("thread", &self.thread)
            .field("mode", &self.mode.name())
            .finish()
    }
}

/// A point-in-time view of the engine's ILP-solver effort: the warm-start
/// context counters plus every solver counter summed over the bounds the
/// engine actually solved (memo hits re-solve nothing and add nothing).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// IPET solves that reused a cached basis (phase 1 skipped).
    pub warm_hits: u64,
    /// IPET solves that ran cold (first sight of a task's flow system).
    pub cold_solves: u64,
    /// Summed per-solve counters (pivots, dual pivots, phase-1 skips…).
    pub totals: SolveStats,
}

impl SolverStats {
    /// Adds `other`'s counters into `self` (kept beside the struct so a
    /// new field can never be silently dropped from an aggregation).
    pub fn absorb(&mut self, other: &SolverStats) {
        self.warm_hits += other.warm_hits;
        self.cold_solves += other.cold_solves;
        self.totals.absorb(&other.totals);
    }
}

/// The shared memo tables of one or more [`AnalysisEngine`]s.
///
/// Every key is machine-independent (geometry, timings and interference
/// are key members, never implied by "the engine's machine"), so a
/// scenario sweep can hand one domain to an engine per machine and every
/// fixpoint, cost table and bound is computed once across the whole
/// sweep. A domain is internally locked; sharing is `Arc`-cheap.
///
/// A domain is unbounded by default; a long-lived service caps its
/// resident footprint with [`MemoDomain::with_budget`], which evicts in
/// least-recently-used order. Eviction never changes results — every
/// memoized function is deterministic in its key, so a re-miss recomputes
/// the identical value and only the hit/miss bill moves.
#[derive(Debug, Default)]
pub struct MemoDomain {
    hierarchies: MemoTable<Arc<HierKey>, Arc<HierarchyAnalysis>>,
    l1s: MemoTable<L1Key, Arc<(CacheAnalysis, CacheAnalysis)>>,
    costs: MemoTable<CostKey, Arc<BlockCosts>>,
    bounds: MemoTable<BoundKey, WcetBound>,
    /// Per-table entry cap; `None` = unbounded (the default).
    budget: Option<NonZeroUsize>,
    /// Logical LRU clock, bumped on every table hit and insert.
    clock: AtomicU64,
    neighbor_hits: AtomicU64,
    /// Worklist-fixpoint effort summed over every cache analysis computed
    /// into this domain (memo hits add nothing).
    fix_totals: Mutex<FixpointStats>,
}

impl MemoDomain {
    /// An empty, unbounded domain.
    #[must_use]
    pub fn new() -> MemoDomain {
        MemoDomain::default()
    }

    /// An empty domain whose four memo tables are each capped at
    /// `per_table` entries, evicted in least-recently-used order on
    /// insert. `0` means unbounded (same as [`MemoDomain::new`]).
    #[must_use]
    pub fn with_budget(per_table: usize) -> MemoDomain {
        MemoDomain {
            budget: NonZeroUsize::new(per_table),
            ..MemoDomain::default()
        }
    }

    /// The per-table entry cap, if any.
    #[must_use]
    pub fn budget(&self) -> Option<usize> {
        self.budget.map(NonZeroUsize::get)
    }

    /// Total entries currently resident across all four tables.
    #[must_use]
    pub fn entries(&self) -> usize {
        self.hierarchies.len() + self.l1s.len() + self.costs.len() + self.bounds.len()
    }

    /// Current memoization counters, summed over every engine feeding
    /// this domain.
    #[must_use]
    pub fn stats(&self) -> MemoStats {
        MemoStats {
            hierarchy_hits: self.hierarchies.stats.hits.load(Ordering::Relaxed),
            hierarchy_misses: self.hierarchies.stats.misses.load(Ordering::Relaxed),
            l1_hits: self.l1s.stats.hits.load(Ordering::Relaxed),
            l1_misses: self.l1s.stats.misses.load(Ordering::Relaxed),
            cost_hits: self.costs.stats.hits.load(Ordering::Relaxed),
            cost_misses: self.costs.stats.misses.load(Ordering::Relaxed),
            bound_hits: self.bounds.stats.hits.load(Ordering::Relaxed),
            bound_misses: self.bounds.stats.misses.load(Ordering::Relaxed),
            hierarchy_evictions: self.hierarchies.stats.evictions.load(Ordering::Relaxed),
            l1_evictions: self.l1s.stats.evictions.load(Ordering::Relaxed),
            cost_evictions: self.costs.stats.evictions.load(Ordering::Relaxed),
            bound_evictions: self.bounds.stats.evictions.load(Ordering::Relaxed),
            neighbor_hits: self.neighbor_hits.load(Ordering::Relaxed),
        }
    }

    /// Worklist-fixpoint effort (blocks evaluated vs the naive-sweep
    /// equivalent) across every cache analysis computed into this domain.
    #[must_use]
    pub fn fixpoint_stats(&self) -> FixpointStats {
        *lock_ok(&self.fix_totals)
    }
}

/// The hierarchy-level intermediates of one analysed task, handed back by
/// [`AnalysisEngine::analyze_prior`] so a *neighbouring* cell (one whose
/// delta provably leaves the cache-hierarchy inputs unchanged — e.g. an
/// arbiter or memory-latency step) can reuse them without re-hashing the
/// program or re-probing the memo tables.
#[derive(Debug, Clone)]
pub struct TaskArtifacts {
    hier_key: Arc<HierKey>,
    hierarchy: Arc<HierarchyAnalysis>,
}

/// The memoizing, parallel batch analyser. See the [module docs](self).
#[derive(Debug)]
pub struct AnalysisEngine {
    analyzer: Analyzer,
    threads: Option<NonZeroUsize>,
    /// All memo tables live here; see [`MemoDomain`] for sharing.
    memo: Arc<MemoDomain>,
    /// Fingerprint of the analyser's IPET options, a [`BoundKey`] member.
    options_fp: (u64, u64),
    /// Warm-start basis cache threaded through every IPET solve. Keyed
    /// by task content only, so it survives `with_options` (options
    /// change the solve, never the constraint system the basis is for)
    /// and can be shared across engines (the constraint system is
    /// machine-independent, so a scenario sweep over many machines still
    /// warm-starts every re-solve of a known task).
    solve_ctx: Arc<SolveContext>,
    solver_totals: Mutex<SolveStats>,
}

impl AnalysisEngine {
    /// Creates an engine for `machine` with default IPET options and one
    /// worker per available hardware thread.
    #[must_use]
    pub fn new(machine: MachineConfig) -> AnalysisEngine {
        AnalysisEngine::from_analyzer(Analyzer::new(machine))
    }

    /// Wraps an existing analyser (keeping its IPET options).
    #[must_use]
    pub fn from_analyzer(analyzer: Analyzer) -> AnalysisEngine {
        let options_fp = debug_fingerprint(analyzer.options());
        AnalysisEngine {
            analyzer,
            threads: None,
            memo: Arc::new(MemoDomain::new()),
            options_fp,
            solve_ctx: Arc::new(SolveContext::new()),
            solver_totals: Mutex::new(SolveStats::default()),
        }
    }

    /// Replaces the warm-start context with a shared one (builder-style).
    /// Several engines — e.g. one per machine of a scenario matrix — can
    /// then feed one basis cache: results are unchanged (warm starts are
    /// bit-identical by construction), only the pivot bill shrinks.
    ///
    /// Note that [`AnalysisEngine::solver_stats`] reports the *context's*
    /// warm/cold counters, which become shared too; aggregate them once
    /// per shared context, not per engine.
    #[must_use]
    pub fn with_solve_context(mut self, ctx: Arc<SolveContext>) -> AnalysisEngine {
        self.solve_ctx = ctx;
        self
    }

    /// Replaces the memo domain with a shared one (builder-style), so
    /// several engines — e.g. one per machine of a scenario sweep —
    /// pool their fixpoints, cost tables and bounds. Results are
    /// unchanged (every key is machine-independent and deterministic);
    /// only repeated work disappears. Aggregate [`MemoDomain::stats`]
    /// once per shared domain, not per engine.
    #[must_use]
    pub fn with_memo(mut self, memo: Arc<MemoDomain>) -> AnalysisEngine {
        self.memo = memo;
        self
    }

    /// The engine's memo domain (shared or private).
    #[must_use]
    pub fn memo(&self) -> &Arc<MemoDomain> {
        &self.memo
    }

    /// Overrides the IPET options (builder-style). Memoized bounds are
    /// keyed by an options fingerprint, so previously cached bounds stay
    /// valid (and shared domains are never cross-contaminated).
    #[must_use]
    pub fn with_options(mut self, options: IpetOptions) -> AnalysisEngine {
        self.analyzer = self.analyzer.clone().with_options(options);
        self.options_fp = debug_fingerprint(self.analyzer.options());
        self
    }

    /// Overrides the worker count for batch calls (builder-style).
    /// `0` restores the default of one worker per available core.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> AnalysisEngine {
        self.threads = NonZeroUsize::new(threads);
        self
    }

    /// The wrapped sequential analyser.
    #[must_use]
    pub fn analyzer(&self) -> &Analyzer {
        &self.analyzer
    }

    /// The machine description.
    #[must_use]
    pub fn machine(&self) -> &MachineConfig {
        self.analyzer.machine()
    }

    /// Current memoization counters (of the engine's — possibly shared —
    /// [`MemoDomain`]).
    #[must_use]
    pub fn memo_stats(&self) -> MemoStats {
        self.memo.stats()
    }

    /// Current ILP-solver effort counters (warm-start hits, pivots,
    /// phase-1 skips) across every bound this engine has solved.
    #[must_use]
    pub fn solver_stats(&self) -> SolverStats {
        let ctx = self.solve_ctx.stats();
        SolverStats {
            warm_hits: ctx.warm_hits,
            cold_solves: ctx.cold_solves,
            totals: *lock_ok(&self.solver_totals),
        }
    }

    /// Worklist-fixpoint effort across every cache analysis computed
    /// into the engine's memo domain: blocks evaluated vs the
    /// naive-sweep equivalent, plus the schema-9 kernel counters —
    /// `kernel_words` (64-bit words the domain kernels walked, summed),
    /// `arena_bytes` (peak per-analysis arena footprint, maxed) and
    /// `arena_resets` (one per computed analysis; memo hits add
    /// nothing).
    #[must_use]
    pub fn fixpoint_stats(&self) -> FixpointStats {
        self.memo.fixpoint_stats()
    }

    /// Analyses one task under `mode`, reusing every memoized
    /// intermediate. Identical results to
    /// [`Analyzer::wcet_with`](crate::analyzer::Analyzer::wcet_with).
    ///
    /// # Errors
    ///
    /// See [`AnalysisError`].
    pub fn analyze(
        &self,
        program: &Program,
        core: usize,
        thread: usize,
        mode: &dyn AnalysisMode,
    ) -> Result<WcetReport, AnalysisError> {
        self.analyze_prior(program, core, thread, mode, None)
            .map(|(report, _)| report)
    }

    /// Like [`AnalysisEngine::analyze`], but additionally returns the
    /// task's [`TaskArtifacts`], and accepts the artifacts of a
    /// *neighbouring* analysis whose hierarchy inputs are known-identical.
    ///
    /// With `prior: Some(art)` the engine skips program fingerprinting,
    /// hierarchy-key construction and the hierarchy memo probe entirely
    /// and reuses `art`'s fixpoints — the caller asserts that nothing the
    /// hierarchy reads (task content, L1/L2 geometry, locking, bypass,
    /// interference shift, core mode's partition view) differs from the
    /// prior analysis; only bus/memory timings and the IPET side may
    /// differ. Debug builds verify the assertion by recomputing the key.
    ///
    /// # Errors
    ///
    /// See [`AnalysisError`].
    pub fn analyze_prior(
        &self,
        program: &Program,
        core: usize,
        thread: usize,
        mode: &dyn AnalysisMode,
        prior: Option<&TaskArtifacts>,
    ) -> Result<(WcetReport, TaskArtifacts), AnalysisError> {
        let shift = mode.l2_shift(self.machine());
        let bus = mode.bus_bound(&self.analyzer, core, thread);
        let ctx = self.analyzer.task_context(core, thread, shift, bus)?;
        self.analyze_ctx_prior(program, &ctx, mode.name(), prior)
    }

    /// The memoized equivalent of [`Analyzer::analyze_with_context`].
    ///
    /// # Errors
    ///
    /// See [`AnalysisError`].
    pub fn analyze_in_context(
        &self,
        program: &Program,
        ctx: &TaskContext,
        mode_name: &str,
    ) -> Result<WcetReport, AnalysisError> {
        self.analyze_ctx_prior(program, ctx, mode_name, None)
            .map(|(report, _)| report)
    }

    fn analyze_ctx_prior(
        &self,
        program: &Program,
        ctx: &TaskContext,
        mode_name: &str,
        prior: Option<&TaskArtifacts>,
    ) -> Result<(WcetReport, TaskArtifacts), AnalysisError> {
        let (hier_key, hierarchy) = match prior {
            Some(art) => {
                self.memo.neighbor_hits.fetch_add(1, Ordering::Relaxed);
                debug_assert_eq!(
                    *art.hier_key,
                    HierKey {
                        task: program_fingerprint(program),
                        l1i: ctx.l1i,
                        l1d: ctx.l1d,
                        l2: ctx.l2.as_ref().map(L2Key::of),
                    },
                    "neighbour reuse requires identical hierarchy inputs"
                );
                (Arc::clone(&art.hier_key), Arc::clone(&art.hierarchy))
            }
            None => {
                let key = Arc::new(HierKey {
                    task: program_fingerprint(program),
                    l1i: ctx.l1i,
                    l1d: ctx.l1d,
                    l2: ctx.l2.as_ref().map(L2Key::of),
                });
                let hierarchy = self.hierarchy(program, ctx, &key);
                (key, hierarchy)
            }
        };
        let cost_key = CostKey {
            hier: Arc::clone(&hier_key),
            bus_wait_bound: ctx.bus_wait_bound,
            mode: ctx.mode,
            timings: ctx.timings,
            pipeline: self.machine().pipeline,
        };
        let costs = self.block_costs(program, &hierarchy, ctx, &cost_key)?;
        let bound = self.bound(program, &costs, cost_key)?;
        let report = build_report(program, mode_name, &hierarchy, ctx.bus_wait_bound, bound);
        Ok((
            report,
            TaskArtifacts {
                hier_key,
                hierarchy,
            },
        ))
    }

    /// Analyses a batch of jobs across worker threads. Results are
    /// returned in job order; each job fails independently.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panicked (propagating the panic).
    pub fn analyze_batch(&self, jobs: &[Job<'_>]) -> Vec<Result<WcetReport, AnalysisError>> {
        let workers = self
            .threads
            .or_else(|| std::thread::available_parallelism().ok())
            .map_or(1, NonZeroUsize::get)
            .min(jobs.len());
        if workers <= 1 {
            return jobs
                .iter()
                .map(|j| self.analyze(j.program, j.core, j.thread, j.mode))
                .collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<Result<WcetReport, AnalysisError>>>> =
            jobs.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(job) = jobs.get(i) else { break };
                    let result = self.analyze(job.program, job.core, job.thread, job.mode);
                    *slots[i].lock().expect("result slot") = Some(result);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot")
                    .expect("every job slot is filled")
            })
            .collect()
    }

    /// Analyses a whole task set in one batch call: task `i` runs
    /// `programs[i]` on its mapped core (hardware-thread slot 0 — task
    /// sets model timesharing, not SMT placement), all under `mode`.
    ///
    /// # Panics
    ///
    /// Panics if `programs.len() != set.len()` or a worker panicked.
    pub fn analyze_task_set(
        &self,
        set: &TaskSet,
        programs: &[Program],
        mode: &dyn AnalysisMode,
    ) -> Vec<Result<WcetReport, AnalysisError>> {
        assert_eq!(
            programs.len(),
            set.len(),
            "one program per task: got {} programs for {} tasks",
            programs.len(),
            set.len()
        );
        let jobs: Vec<Job<'_>> = set
            .ids()
            .zip(programs)
            .map(|(id, program)| Job::new(program, set.task(id).core, mode))
            .collect();
        self.analyze_batch(&jobs)
    }

    /// The memoized refined L2 footprint of a task on `core` (see
    /// [`Analyzer::l2_footprint`]).
    ///
    /// # Errors
    ///
    /// See [`AnalysisError`].
    pub fn l2_footprint(
        &self,
        program: &Program,
        core: usize,
    ) -> Result<crate::mode::Footprint, AnalysisError> {
        let (l1i, l1d, _) = self.analyzer.core_context(core)?;
        let l2 = self.analyzer.l2_input(core, Vec::new());
        let hier_key = Arc::new(HierKey {
            task: program_fingerprint(program),
            l1i,
            l1d,
            l2: l2.as_ref().map(L2Key::of),
        });
        // Reuse the hierarchy memo via a synthetic context carrying only
        // the fields `hierarchy` reads.
        let hierarchy = self.hierarchy_from_parts(program, l1i, l1d, l2, &hier_key);
        Ok(hierarchy
            .l2
            .as_ref()
            .map(|a| a.footprint().clone())
            .unwrap_or_default())
    }

    fn hierarchy(
        &self,
        program: &Program,
        ctx: &TaskContext,
        key: &Arc<HierKey>,
    ) -> Arc<HierarchyAnalysis> {
        self.hierarchy_from_parts(program, ctx.l1i, ctx.l1d, ctx.l2.clone(), key)
    }

    fn hierarchy_from_parts(
        &self,
        program: &Program,
        l1i: CacheConfig,
        l1d: CacheConfig,
        l2: Option<AnalysisInput>,
        key: &Arc<HierKey>,
    ) -> Arc<HierarchyAnalysis> {
        let memo = &*self.memo;
        if let Some(hit) = memo.hierarchies.lookup(&**key, &memo.clock) {
            return hit;
        }
        // Compute outside the lock: fixpoints are slow, and duplicated
        // work on a race is benign (deterministic result). The private-L1
        // halves depend only on (task, L1 geometry) — an interference
        // sweep varies the L2 input alone, so they come from their own
        // memo and only the L2 fixpoint reruns per sweep point. This
        // composition is exactly [`analyze_hierarchy`] with the L1 work
        // lifted out (same reach filter, same inputs, same results).
        let l1 = self.l1_pair(program, l1i, l1d, key.task);
        let l2 = l2.map(|l2_input| {
            let mut input = l2_input;
            input.kind = wcet_cache::analysis::LevelKind::Unified;
            input.reach = Some(wcet_cache::multilevel::reach_filter(&[&l1.0, &l1.1]));
            let analysis = wcet_cache::analysis::analyze(program, &input);
            lock_ok(&memo.fix_totals).absorb(&analysis.fixpoint_stats());
            analysis
        });
        let computed = Arc::new(HierarchyAnalysis {
            l1i: l1.0.clone(),
            l1d: l1.1.clone(),
            l2,
        });
        memo.hierarchies
            .insert(Arc::clone(key), computed, &memo.clock, memo.budget)
    }

    /// The memoized private-L1 fixpoint pair `(l1i, l1d)`.
    fn l1_pair(
        &self,
        program: &Program,
        l1i: CacheConfig,
        l1d: CacheConfig,
        task: (u64, u64),
    ) -> Arc<(CacheAnalysis, CacheAnalysis)> {
        let memo = &*self.memo;
        let key = L1Key { task, l1i, l1d };
        if let Some(hit) = memo.l1s.lookup(&key, &memo.clock) {
            return hit;
        }
        let partial = analyze_hierarchy(program, &HierarchyConfig { l1i, l1d, l2: None });
        lock_ok(&memo.fix_totals).absorb(&partial.fixpoint_stats());
        let computed = Arc::new((partial.l1i, partial.l1d));
        memo.l1s.insert(key, computed, &memo.clock, memo.budget)
    }

    fn block_costs(
        &self,
        program: &Program,
        hierarchy: &HierarchyAnalysis,
        ctx: &TaskContext,
        key: &CostKey,
    ) -> Result<Arc<BlockCosts>, AnalysisError> {
        let memo = &*self.memo;
        if let Some(hit) = memo.costs.lookup(key, &memo.clock) {
            return Ok(hit);
        }
        let input = CostInput {
            pipeline: key.pipeline,
            timings: key.timings,
            bus_wait_bound: key.bus_wait_bound,
            mode: key.mode,
        };
        debug_assert_eq!(input.timings, ctx.timings);
        let computed = Arc::new(block_costs(program, hierarchy, &input)?);
        Ok(memo
            .costs
            .insert(key.clone(), computed, &memo.clock, memo.budget))
    }

    fn bound(
        &self,
        program: &Program,
        costs: &BlockCosts,
        cost_key: CostKey,
    ) -> Result<WcetBound, AnalysisError> {
        let memo = &*self.memo;
        let key = BoundKey {
            cost: cost_key,
            options: self.options_fp,
        };
        if let Some(hit) = memo.bounds.lookup(&key, &memo.clock) {
            return Ok(hit);
        }
        let computed = wcet_ipet_ctx(program, costs, self.analyzer.options(), &self.solve_ctx)?;
        lock_ok(&self.solver_totals).absorb(&computed.solver);
        Ok(memo.bounds.insert(key, computed, &memo.clock, memo.budget))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mode::{Isolated, Joint, Solo};
    use wcet_ir::synth::{fir, matmul, Placement};

    #[test]
    fn engine_matches_sequential_analyzer() {
        let machine = MachineConfig::symmetric(2);
        let engine = AnalysisEngine::new(machine.clone());
        let an = Analyzer::new(machine);
        let p = fir(4, 8, Placement::slot(0));
        for mode in [&Solo as &dyn AnalysisMode, &Isolated] {
            let seq = an.wcet_with(&p, 0, 0, mode).expect("analyses");
            let eng = engine.analyze(&p, 0, 0, mode).expect("analyses");
            assert_eq!(seq, eng);
        }
    }

    #[test]
    fn memo_hits_on_repeat_and_across_modes() {
        let mut machine = MachineConfig::symmetric(2);
        // Partitioned L2: solo and isolated induce the same context.
        let l2 = machine.l2.as_mut().expect("has l2");
        l2.partition =
            wcet_cache::partition::PartitionPlan::even_columns(&l2.cache, 2).expect("fits");
        let engine = AnalysisEngine::new(machine);
        let p = fir(4, 8, Placement::slot(0));
        let solo = engine.analyze(&p, 0, 0, &Solo).expect("analyses");
        let stats = engine.memo_stats();
        assert_eq!(stats.hits(), 0);
        // Same mode again: everything hits.
        let again = engine.analyze(&p, 0, 0, &Solo).expect("analyses");
        assert_eq!(solo, again);
        let stats = engine.memo_stats();
        assert_eq!(stats.hierarchy_hits, 1);
        assert_eq!(stats.bound_hits, 1);
        // Isolated on the partitioned L2 shares the hierarchy fixpoint
        // (same shift) even though the bus bound differs.
        let iso = engine.analyze(&p, 0, 0, &Isolated).expect("analyses");
        assert_eq!(iso.mode, "isolated");
        assert!(engine.memo_stats().hierarchy_hits >= 2);
    }

    #[test]
    fn batch_preserves_order_and_independent_failures() {
        let mut machine = MachineConfig::symmetric(4);
        // Only core 0 is the HRT bus requester: jobs on other cores have
        // no delay bound and must fail in isolation mode — alone.
        machine.bus.arbiter = wcet_arbiter::ArbiterKind::FixedPriority { hrt: 0 };
        let engine = AnalysisEngine::new(machine);
        let a = fir(4, 8, Placement::slot(0));
        let b = matmul(6, Placement::slot(1));
        let jobs = [
            Job::new(&a, 0, &Isolated),
            Job {
                program: &b,
                core: 1,
                thread: 0,
                mode: &Isolated,
            },
            Job::new(&b, 2, &Solo),
        ];
        let results = engine.analyze_batch(&jobs);
        assert_eq!(results.len(), 3);
        assert_eq!(results[0].as_ref().expect("ok").task, a.name());
        assert_eq!(
            results[1]
                .as_ref()
                .expect_err("best-effort core must be unbounded"),
            &AnalysisError::Unbounded
        );
        assert_eq!(results[2].as_ref().expect("ok").task, b.name());
    }

    #[test]
    fn shared_context_warm_starts_across_engines() {
        // Two engines over *different* machines share one basis cache:
        // the task's flow system is machine-independent, so the second
        // engine's first solve is already warm — and both bounds equal
        // their sequential counterparts.
        let ctx = Arc::new(SolveContext::new());
        let m1 = MachineConfig::symmetric(2);
        let mut m2 = MachineConfig::symmetric(2);
        m2.l2 = None;
        let e1 = AnalysisEngine::new(m1.clone()).with_solve_context(Arc::clone(&ctx));
        let e2 = AnalysisEngine::new(m2.clone()).with_solve_context(Arc::clone(&ctx));
        let p = fir(4, 8, Placement::slot(0));
        let r1 = e1.analyze(&p, 0, 0, &Isolated).expect("analyses");
        let r2 = e2.analyze(&p, 0, 0, &Isolated).expect("analyses");
        assert_eq!(r1, Analyzer::new(m1).wcet_isolated(&p, 0, 0).expect("ok"));
        assert_eq!(r2, Analyzer::new(m2).wcet_isolated(&p, 0, 0).expect("ok"));
        let stats = ctx.stats();
        assert_eq!(stats.cold_solves, 1);
        assert_eq!(stats.warm_hits, 1);
    }

    #[test]
    fn joint_mode_through_engine_matches_analyzer() {
        let machine = MachineConfig::symmetric(2);
        let engine = AnalysisEngine::new(machine.clone());
        let an = Analyzer::new(machine);
        let victim = fir(4, 8, Placement::slot(0));
        let bully = matmul(6, Placement::slot(1));
        let fp = engine.l2_footprint(&bully, 1).expect("analyses");
        let fp_seq = an.l2_footprint(&bully, 1).expect("analyses");
        assert_eq!(fp, fp_seq);
        let joint = Joint::new([fp.clone()]);
        let eng = engine.analyze(&victim, 0, 0, &joint).expect("analyses");
        let seq = an.wcet_joint(&victim, 0, 0, &[&fp]).expect("analyses");
        assert_eq!(eng, seq);
    }
}
