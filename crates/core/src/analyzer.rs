//! The task-level WCET analyser: one façade over the paper's three
//! approach families (§3).
//!
//! Given a [`MachineConfig`] (the same description the simulator runs),
//! [`Analyzer`] derives the per-task analysis inputs — effective cache
//! geometries under partitioning, arbiter delay bounds, SMT stretch
//! factors — and computes WCET bounds in three modes:
//!
//! * [`Analyzer::wcet_solo`] — the classic single-task assumption
//!   (paper §2.1). **Unsafe on shared hardware**; kept as the reference
//!   line and for experiment E12.
//! * [`Analyzer::wcet_isolated`] — task isolation (paper §3.3/§5.3): no
//!   knowledge of co-runners; partitions/locks give private storage,
//!   arbiters give workload-independent bus bounds. On an *unpartitioned*
//!   shared L2 this soundly assumes every L2 guarantee can be destroyed.
//! * [`Analyzer::wcet_joint`] — joint analysis (paper §3.1/§4.1): known
//!   co-runner footprints shift must-ages per set (Yan & Zhang; Li et
//!   al.; Hardy et al.), optionally restricted by lifetime analysis.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use wcet_cache::analysis::{AnalysisInput, LevelKind};
use wcet_cache::config::{CacheConfig, LineAddr};
use wcet_cache::multilevel::{analyze_hierarchy, HierarchyAnalysis, HierarchyConfig};
use wcet_cache::partition::{OwnerId, PartitionPlan};
use wcet_ir::Program;
use wcet_pipeline::cost::{block_costs, CoreMode, CostInput, UnboundedError};
use wcet_pipeline::smt::SmtPolicy;
use wcet_pipeline::timing::MemTimings;
use wcet_sim::config::{CoreKind, MachineConfig};

use crate::ipet::{wcet_ipet, IpetError, IpetOptions, WcetBound};
use crate::mode::{AnalysisMode, Isolated, JointRefs, Solo};

/// Analysis failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnalysisError {
    /// The configuration admits no per-task bound (free-for-all SMT,
    /// shared unpartitioned L1, yield-switching core — use the joint
    /// analyses instead).
    Unanalysable(String),
    /// The bus gives this requester no delay bound.
    Unbounded,
    /// IPET failed.
    Ipet(IpetError),
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::Unanalysable(why) => write!(f, "not analysable in isolation: {why}"),
            AnalysisError::Unbounded => {
                f.write_str("no finite WCET: bus arbiter provides no delay bound")
            }
            AnalysisError::Ipet(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for AnalysisError {}

impl From<UnboundedError> for AnalysisError {
    fn from(_: UnboundedError) -> Self {
        AnalysisError::Unbounded
    }
}

impl From<IpetError> for AnalysisError {
    fn from(e: IpetError) -> Self {
        AnalysisError::Ipet(e)
    }
}

/// A WCET analysis result with its provenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WcetReport {
    /// Task (program) name.
    pub task: String,
    /// Analysis mode ("solo", "isolated", "joint").
    pub mode: String,
    /// The WCET bound in cycles.
    pub wcet: u64,
    /// Bus waiting bound used per memory transaction.
    pub bus_wait_bound: Option<u64>,
    /// L1I classification histogram `(ah, am, ps, nc)`.
    pub l1i_hist: (usize, usize, usize, usize),
    /// L1D classification histogram.
    pub l1d_hist: (usize, usize, usize, usize),
    /// L2 classification histogram, if an L2 was analysed.
    pub l2_hist: Option<(usize, usize, usize, usize)>,
    /// IPET model size and solver effort.
    pub ipet: WcetBound,
}

/// The per-task analysis inputs derived from a machine description.
#[derive(Debug, Clone)]
pub struct TaskContext {
    /// Effective L1I geometry (SMT slices applied).
    pub l1i: CacheConfig,
    /// Effective L1D geometry.
    pub l1d: CacheConfig,
    /// L2 analysis input (effective geometry + locks/bypass +
    /// interference), if the machine has an L2.
    pub l2: Option<AnalysisInput>,
    /// Memory-system timing parameters.
    pub timings: MemTimings,
    /// Bus waiting bound per transaction.
    pub bus_wait_bound: Option<u64>,
    /// Core threading mode.
    pub mode: CoreMode,
}

/// WCET analyser over a machine description.
#[derive(Debug, Clone)]
pub struct Analyzer {
    machine: MachineConfig,
    options: IpetOptions,
}

impl Analyzer {
    /// Creates an analyser for `machine`.
    #[must_use]
    pub fn new(machine: MachineConfig) -> Analyzer {
        Analyzer {
            machine,
            options: IpetOptions::default(),
        }
    }

    /// Overrides the IPET options (builder-style).
    #[must_use]
    pub fn with_options(mut self, options: IpetOptions) -> Analyzer {
        self.options = options;
        self
    }

    /// The machine description.
    #[must_use]
    pub fn machine(&self) -> &MachineConfig {
        &self.machine
    }

    /// The IPET options in effect.
    #[must_use]
    pub fn options(&self) -> &IpetOptions {
        &self.options
    }

    /// Total bus-requester slots (hardware threads).
    #[must_use]
    pub fn total_slots(&self) -> usize {
        self.machine.total_threads()
    }

    /// The flattened bus slot of `(core, thread)`.
    #[must_use]
    pub fn bus_slot(&self, core: usize, thread: usize) -> usize {
        self.machine.cores[..core]
            .iter()
            .map(|c| c.kind.threads() as usize)
            .sum::<usize>()
            + thread
    }

    /// The effective per-thread L1s and core mode of `(core, thread)`.
    ///
    /// # Errors
    ///
    /// [`AnalysisError::Unanalysable`] for configurations without a sound
    /// per-thread model.
    pub(crate) fn core_context(
        &self,
        core: usize,
    ) -> Result<(CacheConfig, CacheConfig, CoreMode), AnalysisError> {
        let cc = &self.machine.cores[core];
        match cc.kind {
            CoreKind::Scalar => Ok((cc.l1i, cc.l1d, CoreMode::Single)),
            CoreKind::Smt {
                threads,
                policy: SmtPolicy::PredictableRoundRobin,
                partitioned_l1,
            } => {
                if threads > 1 && !partitioned_l1 {
                    return Err(AnalysisError::Unanalysable(
                        "SMT threads share an unpartitioned L1".into(),
                    ));
                }
                let slice = |c: CacheConfig| {
                    let per = (c.ways() / threads.max(1)).max(1);
                    c.with_ways(per).expect("non-zero slice")
                };
                let (i, d) = if threads > 1 {
                    (slice(cc.l1i), slice(cc.l1d))
                } else {
                    (cc.l1i, cc.l1d)
                };
                Ok((i, d, CoreMode::PredictableSmt { threads }))
            }
            CoreKind::Smt {
                policy: SmtPolicy::FreeForAll,
                ..
            } => Err(AnalysisError::Unanalysable(
                "free-for-all SMT issue policy".into(),
            )),
            CoreKind::YieldMt { .. } => Err(AnalysisError::Unanalysable(
                "yield-switching core: use the joint yield-graph analysis".into(),
            )),
        }
    }

    fn mem_timings(&self, l1i: &CacheConfig, l1d: &CacheConfig) -> MemTimings {
        MemTimings {
            // A single L1 latency covers fetch and data; take the max for
            // soundness when they differ.
            l1_hit: l1i.hit_latency.max(l1d.hit_latency),
            l2_hit: self.machine.l2.as_ref().map(|l2| l2.cache.hit_latency),
            bus_transfer: self.machine.bus.transfer,
            mem_latency: wcet_arbiter::MemoryController::new(self.machine.memory)
                .worst_case_latency(),
        }
    }

    fn bus_bound(&self, core: usize, thread: usize) -> Option<u64> {
        let n = self.total_slots();
        let arb = self.machine.bus.arbiter.build(n);
        arb.worst_case_delay(self.bus_slot(core, thread), self.machine.bus.transfer)
    }

    /// The L2 analysis input for the task on `core`, under the given
    /// interference shift (empty = none).
    pub(crate) fn l2_input(&self, core: usize, shift: Vec<u32>) -> Option<AnalysisInput> {
        let l2 = self.machine.l2.as_ref()?;
        let effective = match &l2.partition {
            PartitionPlan::Shared => l2.cache,
            plan => plan
                .effective_config(&l2.cache, OwnerId(core as u32))
                .expect("machine partition covers every core"),
        };
        let mut input = AnalysisInput::level1(effective, LevelKind::Unified);
        // Mirror the concrete cache's lock rule exactly: lines are pinned
        // first-come in sorted order, at most `ways` per set, and each
        // pinned line consumes one way of the set's unlocked capacity.
        // Assuming more (overflow lines always-hit, or full associativity
        // left for unlocked lines) would be optimistic — i.e. unsound.
        let mut locked_per_set = vec![0u32; effective.sets() as usize];
        for &line in &l2.locked {
            let set = effective.set_of(line) as usize;
            if locked_per_set[set] < effective.ways() {
                locked_per_set[set] += 1;
                input.locked.insert(line);
            }
        }
        if locked_per_set.iter().any(|&n| n > 0) {
            input.set_ways = Some(
                locked_per_set
                    .iter()
                    .map(|&n| effective.ways() - n)
                    .collect(),
            );
        }
        input.bypass = l2.bypass.clone();
        input.interference_shift = shift;
        Some(input)
    }

    /// Builds the full per-task context for `(core, thread)` with an
    /// explicit L2 interference shift.
    ///
    /// # Errors
    ///
    /// See [`AnalysisError`].
    pub fn task_context(
        &self,
        core: usize,
        thread: usize,
        l2_shift: Vec<u32>,
        bus_bound: Option<Option<u64>>,
    ) -> Result<TaskContext, AnalysisError> {
        let (l1i, l1d, mode) = self.core_context(core)?;
        let l2 = self.l2_input(core, l2_shift);
        let timings = self.mem_timings(&l1i, &l1d);
        let bus_wait_bound = match bus_bound {
            Some(b) => b,
            None => self.bus_bound(core, thread),
        };
        Ok(TaskContext {
            l1i,
            l1d,
            l2,
            timings,
            bus_wait_bound,
            mode,
        })
    }

    /// Runs hierarchy analysis + cost computation + IPET for one context.
    ///
    /// # Errors
    ///
    /// See [`AnalysisError`].
    pub fn analyze_with_context(
        &self,
        program: &Program,
        ctx: &TaskContext,
        mode_name: &str,
    ) -> Result<WcetReport, AnalysisError> {
        let hier_cfg = HierarchyConfig {
            l1i: ctx.l1i,
            l1d: ctx.l1d,
            l2: ctx.l2.clone(),
        };
        let hierarchy = analyze_hierarchy(program, &hier_cfg);
        let cost_input = CostInput {
            pipeline: self.machine.pipeline,
            timings: ctx.timings,
            bus_wait_bound: ctx.bus_wait_bound,
            mode: ctx.mode,
        };
        let costs = block_costs(program, &hierarchy, &cost_input)?;
        let bound = wcet_ipet(program, &costs, &self.options)?;
        Ok(build_report(
            program,
            mode_name,
            &hierarchy,
            ctx.bus_wait_bound,
            bound,
        ))
    }

    /// Analyses one task under any [`AnalysisMode`] strategy: the mode
    /// supplies the L2 interference shift and bus-bound policy, everything
    /// else (context derivation, hierarchy analysis, cost model, IPET) is
    /// shared.
    ///
    /// # Errors
    ///
    /// See [`AnalysisError`].
    pub fn wcet_with(
        &self,
        program: &Program,
        core: usize,
        thread: usize,
        mode: &dyn AnalysisMode,
    ) -> Result<WcetReport, AnalysisError> {
        let shift = mode.l2_shift(&self.machine);
        let bus = mode.bus_bound(self, core, thread);
        let ctx = self.task_context(core, thread, shift, bus)?;
        self.analyze_with_context(program, &ctx, mode.name())
    }

    /// Classic solo analysis: the task is assumed alone on the machine —
    /// full (partition-effective) L2, no bus *contention* (slot arbiters
    /// still charge their slot wait). **Unsafe** on
    /// shared hardware (paper §2.2); kept as the reference line.
    ///
    /// # Errors
    ///
    /// See [`AnalysisError`].
    pub fn wcet_solo(
        &self,
        program: &Program,
        core: usize,
        thread: usize,
    ) -> Result<WcetReport, AnalysisError> {
        self.wcet_with(program, core, thread, &Solo)
    }

    /// Task-isolation analysis (paper §3.3): sound with *no* knowledge of
    /// co-runners. Storage: partition-effective caches; an unpartitioned
    /// shared L2 is assumed fully corruptible (every set shifted by its
    /// associativity). Bandwidth: the arbiter's workload-independent
    /// bound.
    ///
    /// # Errors
    ///
    /// [`AnalysisError::Unbounded`] if the arbiter cannot bound this
    /// requester (e.g. a best-effort thread under CarCore-style fixed
    /// priority), plus the general errors.
    pub fn wcet_isolated(
        &self,
        program: &Program,
        core: usize,
        thread: usize,
    ) -> Result<WcetReport, AnalysisError> {
        self.wcet_with(program, core, thread, &Isolated)
    }

    /// Joint analysis (paper §3.1/§4.1): co-runner footprints are known;
    /// their union shifts must-ages per set. Pass the refined footprints
    /// from [`Analyzer::l2_footprint`], restricted to tasks whose lifetime
    /// windows overlap if lifetime analysis is in use.
    ///
    /// # Errors
    ///
    /// See [`AnalysisError`].
    pub fn wcet_joint(
        &self,
        program: &Program,
        core: usize,
        thread: usize,
        corunner_footprints: &[&BTreeMap<u32, BTreeSet<LineAddr>>],
    ) -> Result<WcetReport, AnalysisError> {
        self.wcet_with(program, core, thread, &JointRefs(corunner_footprints))
    }

    /// The refined L2 footprint of a task (only lines whose accesses may
    /// reach the L2), for use as a co-runner footprint in
    /// [`Analyzer::wcet_joint`].
    ///
    /// # Errors
    ///
    /// See [`AnalysisError`].
    pub fn l2_footprint(
        &self,
        program: &Program,
        core: usize,
    ) -> Result<BTreeMap<u32, BTreeSet<LineAddr>>, AnalysisError> {
        let (l1i, l1d, _) = self.core_context(core)?;
        let hier_cfg = HierarchyConfig {
            l1i,
            l1d,
            l2: self.l2_input(core, Vec::new()),
        };
        let hierarchy: HierarchyAnalysis = analyze_hierarchy(program, &hier_cfg);
        Ok(hierarchy
            .l2
            .map(|a| a.footprint().clone())
            .unwrap_or_default())
    }
}

/// Assembles a [`WcetReport`] from the analysis intermediates (shared by
/// [`Analyzer::analyze_with_context`] and the memoizing engine).
pub(crate) fn build_report(
    program: &Program,
    mode_name: &str,
    hierarchy: &HierarchyAnalysis,
    bus_wait_bound: Option<u64>,
    bound: WcetBound,
) -> WcetReport {
    WcetReport {
        task: program.name().to_string(),
        mode: mode_name.to_string(),
        wcet: bound.wcet,
        bus_wait_bound,
        l1i_hist: hierarchy.l1i.histogram(),
        l1d_hist: hierarchy.l1d.histogram(),
        l2_hist: hierarchy.l2.as_ref().map(|a| a.histogram()),
        ipet: bound,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcet_arbiter::ArbiterKind;
    use wcet_ir::synth::{fir, matmul, Placement};

    #[test]
    fn solo_below_isolated_on_shared_l2() {
        let machine = MachineConfig::symmetric(4);
        let an = Analyzer::new(machine);
        let p = fir(4, 8, Placement::slot(0));
        let solo = an.wcet_solo(&p, 0, 0).expect("analyses");
        let iso = an.wcet_isolated(&p, 0, 0).expect("analyses");
        assert!(
            solo.wcet <= iso.wcet,
            "solo {} vs isolated {}",
            solo.wcet,
            iso.wcet
        );
        assert!(solo.wcet < iso.wcet, "isolation must cost something here");
    }

    #[test]
    fn joint_between_solo_and_isolated() {
        let machine = MachineConfig::symmetric(2);
        let an = Analyzer::new(machine);
        let victim = fir(4, 8, Placement::slot(0));
        let bully = matmul(6, Placement::slot(1));
        let fp = an.l2_footprint(&bully, 1).expect("analyses");
        let solo = an.wcet_solo(&victim, 0, 0).expect("analyses").wcet;
        let joint = an.wcet_joint(&victim, 0, 0, &[&fp]).expect("analyses").wcet;
        let iso = an.wcet_isolated(&victim, 0, 0).expect("analyses").wcet;
        assert!(solo <= joint, "solo {solo} <= joint {joint}");
        assert!(joint <= iso, "joint {joint} <= isolated {iso}");
    }

    #[test]
    fn partitioned_l2_makes_isolated_tighter() {
        let shared = MachineConfig::symmetric(4);
        let mut partitioned = shared.clone();
        {
            let l2 = partitioned.l2.as_mut().expect("has l2");
            l2.partition = PartitionPlan::even_columns(&l2.cache, 4).expect("fits");
        }
        let p = fir(8, 16, Placement::slot(0));
        let iso_shared = Analyzer::new(shared.clone())
            .wcet_isolated(&p, 0, 0)
            .expect("ok")
            .wcet;
        let iso_part = Analyzer::new(partitioned)
            .wcet_isolated(&p, 0, 0)
            .expect("ok")
            .wcet;
        assert!(
            iso_part <= iso_shared,
            "partitioning must help isolation: {iso_part} vs {iso_shared}"
        );
        let _ = shared;
    }

    #[test]
    fn fixed_priority_best_effort_is_unbounded() {
        let mut machine = MachineConfig::symmetric(2);
        machine.bus.arbiter = ArbiterKind::FixedPriority { hrt: 0 };
        let an = Analyzer::new(machine);
        let p = fir(2, 4, Placement::slot(0));
        // HRT core bounded…
        assert!(an.wcet_isolated(&p, 0, 0).is_ok());
        // …best-effort core not.
        assert_eq!(
            an.wcet_isolated(&p, 1, 0).unwrap_err(),
            AnalysisError::Unbounded
        );
    }

    #[test]
    fn free_for_all_smt_unanalysable() {
        let mut machine = MachineConfig::symmetric(1);
        machine.cores[0].kind = CoreKind::Smt {
            threads: 2,
            policy: SmtPolicy::FreeForAll,
            partitioned_l1: true,
        };
        let an = Analyzer::new(machine);
        let p = fir(2, 4, Placement::slot(0));
        assert!(matches!(
            an.wcet_isolated(&p, 0, 0),
            Err(AnalysisError::Unanalysable(_))
        ));
    }

    #[test]
    fn more_corunners_monotonically_raise_joint_wcet() {
        let machine = MachineConfig::symmetric(4);
        let an = Analyzer::new(machine);
        let victim = fir(4, 8, Placement::slot(0));
        let bullies: Vec<_> = (1..4).map(|i| matmul(6, Placement::slot(i))).collect();
        let fps: Vec<_> = bullies
            .iter()
            .enumerate()
            .map(|(i, b)| an.l2_footprint(b, i + 1).expect("ok"))
            .collect();
        let mut prev = 0;
        for k in 0..=fps.len() {
            let refs: Vec<&BTreeMap<u32, BTreeSet<LineAddr>>> = fps[..k].iter().collect();
            let w = an.wcet_joint(&victim, 0, 0, &refs).expect("ok").wcet;
            assert!(
                w >= prev,
                "adding a co-runner shrank the WCET: {w} < {prev}"
            );
            prev = w;
        }
    }
}
