//! Statically-controlled resource sharing (paper §3.2, §4.2, §5.2):
//! TDMA offset-aware analysis, offset-state explosion measurement, and
//! static/dynamic cache-locking WCET assembly.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use wcet_arbiter::Tdma;
use wcet_cache::analysis::{AnalysisInput, LevelKind};
use wcet_cache::concrete::ConcreteCache;
use wcet_cache::config::CacheConfig;
use wcet_cache::lock::{select_dynamic, select_static, DynamicLockPlan, LockPlan};
use wcet_cache::multilevel::{analyze_hierarchy, HierarchyConfig};
use wcet_ir::fixpoint::FixpointSink;
use wcet_ir::interp::execute;
use wcet_ir::program::AccessKind;
use wcet_ir::{BlockId, Program};
use wcet_pipeline::cost::{block_costs, BlockCosts, CoreMode, CostInput};
use wcet_pipeline::timing::{MemTimings, PipelineConfig};

use wcet_sim::config::MachineConfig;

use crate::analyzer::{AnalysisError, Analyzer};
use crate::ipet::{wcet_ipet, wcet_ipet_ctx, IpetOptions, SolveContext};

/// One IPET solve, warm-started through `ctx` when provided. Sweep
/// drivers (exp05/exp06) re-analyse each task under many cache shapes;
/// the flow system is per-task, so a shared context skips phase 1 on
/// every re-solve.
fn ipet_wcet(
    program: &Program,
    costs: &wcet_pipeline::cost::BlockCosts,
    opts: &IpetOptions,
    ctx: Option<&SolveContext>,
) -> Result<u64, AnalysisError> {
    let bound = match ctx {
        Some(ctx) => wcet_ipet_ctx(program, costs, opts, ctx)?,
        None => wcet_ipet(program, costs, opts)?,
    };
    Ok(bound.wcet)
}

/// Parameters of a statically-controlled single-task study (the task's
/// private view of the machine: its L1s, its L2 slice, its bus slot).
#[derive(Debug, Clone)]
pub struct StaticParams {
    /// L1 instruction cache.
    pub l1i: CacheConfig,
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// The task's (partition-effective) L2 slice, if any.
    pub l2: Option<CacheConfig>,
    /// Memory-system latencies.
    pub timings: MemTimings,
    /// Bus waiting bound per transaction.
    pub bus_wait_bound: Option<u64>,
    /// Pipeline geometry.
    pub pipeline: PipelineConfig,
    /// Core threading mode.
    pub mode: CoreMode,
}

impl StaticParams {
    /// Derives a task's statically-controlled parameters from a machine
    /// description, exactly as [`crate::analyzer::Analyzer`] would see the
    /// task at `(core, thread)`: effective (partition-sliced) cache
    /// geometries, the memory timing ladder, and the arbiter's
    /// workload-independent bus bound. This is how scenario matrices
    /// route their `static-ctrl` / lock-mode cells through one shared
    /// machine description.
    ///
    /// # Errors
    ///
    /// See [`AnalysisError`] — notably `Unanalysable` for cores without a
    /// sound per-thread model and `Unbounded` when the arbiter cannot
    /// bound this requester. (An unbounded bus is an error here because a
    /// statically-controlled study charges a finite wait per transaction.)
    pub fn from_machine(
        machine: &MachineConfig,
        core: usize,
        thread: usize,
    ) -> Result<StaticParams, AnalysisError> {
        let analyzer = Analyzer::new(machine.clone());
        let ctx = analyzer.task_context(core, thread, Vec::new(), None)?;
        if ctx.bus_wait_bound.is_none() {
            return Err(AnalysisError::Unbounded);
        }
        Ok(StaticParams {
            l1i: ctx.l1i,
            l1d: ctx.l1d,
            l2: ctx.l2.as_ref().map(|input| input.cache),
            timings: ctx.timings,
            bus_wait_bound: ctx.bus_wait_bound,
            pipeline: machine.pipeline,
            mode: ctx.mode,
        })
    }

    fn hierarchy_with_l2(&self, l2_input: Option<AnalysisInput>) -> HierarchyConfig {
        HierarchyConfig {
            l1i: self.l1i,
            l1d: self.l1d,
            l2: l2_input,
        }
    }

    fn cost_input(&self) -> CostInput {
        CostInput {
            pipeline: self.pipeline,
            timings: self.timings,
            bus_wait_bound: self.bus_wait_bound,
            mode: self.mode,
        }
    }

    fn plain_l2_input(&self) -> Option<AnalysisInput> {
        self.l2
            .map(|c| AnalysisInput::level1(c, LevelKind::Unified))
    }
}

/// Baseline: no locking.
///
/// # Errors
///
/// See [`AnalysisError`].
pub fn wcet_unlocked(
    program: &Program,
    params: &StaticParams,
    opts: &IpetOptions,
) -> Result<u64, AnalysisError> {
    wcet_unlocked_ctx(program, params, opts, None, None)
}

/// [`wcet_unlocked`] with an optional warm-start [`SolveContext`]
/// (bit-identical results, fewer simplex pivots across a sweep).
///
/// # Errors
///
/// See [`AnalysisError`].
pub fn wcet_unlocked_ctx(
    program: &Program,
    params: &StaticParams,
    opts: &IpetOptions,
    ctx: Option<&SolveContext>,
    fix: Option<&FixpointSink>,
) -> Result<u64, AnalysisError> {
    let hierarchy = analyze_hierarchy(program, &params.hierarchy_with_l2(params.plain_l2_input()));
    if let Some(fix) = fix {
        fix.absorb(hierarchy.fixpoint_stats());
    }
    let costs = block_costs(program, &hierarchy, &params.cost_input())?;
    ipet_wcet(program, &costs, opts, ctx)
}

/// Static locking (Puaut & Decotigny \[27\]; Suhendra & Mitra \[37\]): lock
/// the globally hottest lines into `lock_ways` ways of the L2 slice; the
/// preload pass is charged at task start.
///
/// # Errors
///
/// See [`AnalysisError`].
///
/// # Panics
///
/// Panics if `params.l2` is `None` (locking studies need an L2 slice).
pub fn wcet_static_lock(
    program: &Program,
    params: &StaticParams,
    lock_ways: u32,
    opts: &IpetOptions,
) -> Result<(u64, LockPlan), AnalysisError> {
    wcet_static_lock_ctx(program, params, lock_ways, opts, None, None)
}

/// [`wcet_static_lock`] with an optional warm-start [`SolveContext`].
///
/// # Errors
///
/// See [`AnalysisError`].
///
/// # Panics
///
/// Panics if `params.l2` is `None`.
pub fn wcet_static_lock_ctx(
    program: &Program,
    params: &StaticParams,
    lock_ways: u32,
    opts: &IpetOptions,
    ctx: Option<&SolveContext>,
    fix: Option<&FixpointSink>,
) -> Result<(u64, LockPlan), AnalysisError> {
    let l2 = params.l2.expect("static locking needs an L2 slice");
    let plan = select_static(program, &l2, lock_ways);
    let mut input = AnalysisInput::level1(l2, LevelKind::Unified);
    input.locked = plan.lines.clone();
    input.set_ways = Some(locked_ways_vector(&l2, &plan.lines));
    let hierarchy = analyze_hierarchy(program, &params.hierarchy_with_l2(Some(input)));
    if let Some(fix) = fix {
        fix.absorb(hierarchy.fixpoint_stats());
    }
    let mut costs = block_costs(program, &hierarchy, &params.cost_input())?;
    // Preload: one memory fetch per locked line at task start.
    let preload =
        plan.preload_lines() as u64 * params.timings.mem_extra(params.bus_wait_bound.unwrap_or(0));
    costs.startup += preload;
    Ok((ipet_wcet(program, &costs, opts, ctx)?, plan))
}

/// Dynamic locking (Suhendra & Mitra \[37\]): per-region (outermost loop)
/// lock contents, reloaded at each region entry.
///
/// Each block's cost comes from the hierarchy analysis matching its
/// region's lock contents; reload costs are charged on the region's loop
/// entries (residual region: at task start).
///
/// # Errors
///
/// See [`AnalysisError`].
///
/// # Panics
///
/// Panics if `params.l2` is `None`.
pub fn wcet_dynamic_lock(
    program: &Program,
    params: &StaticParams,
    lock_ways: u32,
    opts: &IpetOptions,
) -> Result<(u64, DynamicLockPlan), AnalysisError> {
    wcet_dynamic_lock_ctx(program, params, lock_ways, opts, None, None)
}

/// [`wcet_dynamic_lock`] with an optional warm-start [`SolveContext`].
///
/// # Errors
///
/// See [`AnalysisError`].
///
/// # Panics
///
/// Panics if `params.l2` is `None`.
pub fn wcet_dynamic_lock_ctx(
    program: &Program,
    params: &StaticParams,
    lock_ways: u32,
    opts: &IpetOptions,
    ctx: Option<&SolveContext>,
    fix: Option<&FixpointSink>,
) -> Result<(u64, DynamicLockPlan), AnalysisError> {
    let l2 = params.l2.expect("dynamic locking needs an L2 slice");
    let plan = select_dynamic(program, &l2, lock_ways);
    let mem_path = params.timings.mem_extra(params.bus_wait_bound.unwrap_or(0));

    // One hierarchy analysis per region; assemble per-block costs from the
    // analysis of the block's own region.
    let mut base: BTreeMap<BlockId, u64> = BTreeMap::new();
    let mut loop_entry_extras: BTreeMap<BlockId, u64> = BTreeMap::new();
    let mut startup = params.pipeline.startup_cycles()
        * match params.mode {
            CoreMode::Single => 1,
            CoreMode::PredictableSmt { threads } => u64::from(threads.max(1)),
        };
    for region in &plan.regions {
        let mut input = AnalysisInput::level1(l2, LevelKind::Unified);
        input.locked = region.lines.clone();
        input.set_ways = Some(locked_ways_vector(&l2, &region.lines));
        let hierarchy = analyze_hierarchy(program, &params.hierarchy_with_l2(Some(input)));
        if let Some(fix) = fix {
            fix.absorb(hierarchy.fixpoint_stats());
        }
        let costs = block_costs(program, &hierarchy, &params.cost_input())?;
        for &b in &region.blocks {
            base.insert(b, costs.cost(b));
        }
        // Persistence extras whose scope lies in this region.
        for (&scope, &extra) in &costs.loop_entry_extras {
            if region.blocks.contains(&scope) {
                *loop_entry_extras.entry(scope).or_insert(0) += extra;
            }
        }
        // Reload cost at each region entry.
        let reload = region.lines.len() as u64 * mem_path;
        match region.scope {
            Some(header) => {
                *loop_entry_extras.entry(header).or_insert(0) += reload;
            }
            None => startup += reload,
        }
    }
    let costs = BlockCosts {
        base,
        loop_entry_extras,
        startup,
    };
    Ok((ipet_wcet(program, &costs, opts, ctx)?, plan))
}

fn locked_ways_vector(
    l2: &CacheConfig,
    locked: &BTreeSet<wcet_cache::config::LineAddr>,
) -> Vec<u32> {
    let mut per_set = vec![0u32; l2.sets() as usize];
    for &line in locked {
        per_set[l2.set_of(line) as usize] += 1;
    }
    per_set
        .into_iter()
        .map(|locked_in_set| l2.ways().saturating_sub(locked_in_set))
        .collect()
}

/// Offset-aware TDMA timing walk (Rosén et al. \[33\], paper §5.2).
///
/// Replays the task's **unique** execution path with concrete private
/// caches, charging each memory transaction the *exact* TDMA wait at its
/// issue offset. The result is a true WCET **only for single-path
/// programs** (the paper's point: this is where static bus scheduling is
/// analysable; on multi-path code the start-time states explode — see
/// [`offset_state_sizes`]).
///
/// # Errors
///
/// Returns [`AnalysisError::Unbounded`] if a transfer fits no slot of this
/// owner.
///
/// # Panics
///
/// Panics if the program does not terminate within an internal step limit.
pub fn tdma_offset_aware_wcet(
    program: &Program,
    params: &StaticParams,
    tdma: &Tdma,
    slot_owner: usize,
) -> Result<u64, AnalysisError> {
    let run = execute(program, 50_000_000).expect("program must terminate");
    let mut l1i = ConcreteCache::new(params.l1i);
    let mut l1d = ConcreteCache::new(params.l1d);
    let mut l2 = params.l2.map(ConcreteCache::new);
    let k = match params.mode {
        CoreMode::Single => 1,
        CoreMode::PredictableSmt { threads } => u64::from(threads.max(1)),
    };
    let mut t: u64 = params.pipeline.startup_cycles() * k;

    // Walk accesses in program order; charge exec latencies per slot.
    let mut trace_pos = 0usize;
    for &block in &run.block_trace {
        let blk = program.cfg().block(block);
        let mut slot_idx = 0usize;
        while slot_idx < blk.fetch_slots() {
            // Fetch access.
            let acc = run.accesses[trace_pos];
            debug_assert_eq!(acc.kind, AccessKind::Fetch);
            t += access_time(
                acc.addr, true, &mut l1i, &mut l1d, &mut l2, params, tdma, slot_owner, t,
            )?;
            trace_pos += 1;
            // Optional data access.
            let is_term = slot_idx + 1 == blk.fetch_slots();
            let exec: u64 = if is_term {
                1
            } else {
                let ins = &blk.instrs()[slot_idx];
                if ins.mem_ref().is_some() {
                    let dacc = run.accesses[trace_pos];
                    debug_assert!(dacc.kind.is_data());
                    t += access_time(
                        dacc.addr, false, &mut l1i, &mut l1d, &mut l2, params, tdma, slot_owner, t,
                    )?;
                    trace_pos += 1;
                }
                u64::from(ins.exec_latency())
            };
            t += exec * k;
            slot_idx += 1;
        }
    }
    Ok(t)
}

#[allow(clippy::too_many_arguments)]
fn access_time(
    addr: wcet_ir::Addr,
    is_fetch: bool,
    l1i: &mut ConcreteCache,
    l1d: &mut ConcreteCache,
    l2: &mut Option<ConcreteCache>,
    params: &StaticParams,
    tdma: &Tdma,
    slot_owner: usize,
    now: u64,
) -> Result<u64, AnalysisError> {
    let l1 = if is_fetch { l1i } else { l1d };
    let line = l1.config().line_of(addr);
    let l1_extra = u64::from(l1.config().hit_latency.max(1)) - 1;
    if l1.access(line).is_hit() {
        return Ok(l1_extra);
    }
    let mut extra = l1_extra;
    if let Some(l2c) = l2.as_mut() {
        let l2_line = l2c.config().line_of(addr);
        extra += u64::from(l2c.config().hit_latency);
        if l2c.access(l2_line).is_hit() {
            return Ok(extra);
        }
    }
    // Memory transaction at the current offset.
    let wait = tdma
        .delay_at_offset(
            slot_owner,
            (now + extra) % tdma.period(),
            params.timings.bus_transfer,
        )
        .ok_or(AnalysisError::Unbounded)?;
    Ok(extra + wait + params.timings.bus_transfer + params.timings.mem_latency)
}

/// Sizes of the per-block *start-offset state sets* a TDMA-offset-precise
/// analysis would have to track within one loop iteration: the set of
/// possible `time mod period` values at each block's start, propagated
/// with the given block costs along forward edges (back edges cut).
///
/// Single-path programs keep singleton sets; multi-path programs multiply
/// states at every join — Rochange's §5.2 critique, quantified
/// (experiment E08). A full analysis would additionally track
/// cross-iteration offsets, which is strictly worse.
#[must_use]
pub fn offset_state_sizes(
    program: &Program,
    costs: &BlockCosts,
    period: u64,
) -> BTreeMap<BlockId, usize> {
    let cfg = program.cfg();
    let back: BTreeSet<wcet_ir::Edge> = cfg.back_edges().into_iter().collect();
    let mut states: Vec<BTreeSet<u64>> = vec![BTreeSet::new(); cfg.num_blocks()];
    states[cfg.entry().index()].insert(costs.startup % period);
    let mut work: VecDeque<BlockId> = VecDeque::from([cfg.entry()]);
    while let Some(b) = work.pop_front() {
        let outs: Vec<u64> = states[b.index()]
            .iter()
            .map(|&o| (o + costs.cost(b)) % period)
            .collect();
        for &s in cfg.successors(b) {
            if back.contains(&wcet_ir::Edge::new(b, s)) {
                continue;
            }
            let before = states[s.index()].len();
            states[s.index()].extend(outs.iter().copied());
            if states[s.index()].len() != before {
                work.push_back(s);
            }
        }
    }
    cfg.block_ids()
        .map(|b| (b, states[b.index()].len()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcet_arbiter::Slot;
    use wcet_ir::synth::{bsort, single_path, Placement};

    fn params() -> StaticParams {
        StaticParams {
            l1i: CacheConfig::new(32, 2, 16, 1).expect("valid"),
            l1d: CacheConfig::new(16, 2, 32, 1).expect("valid"),
            l2: Some(CacheConfig::new(64, 4, 32, 4).expect("valid")),
            timings: MemTimings {
                l1_hit: 1,
                l2_hit: Some(4),
                bus_transfer: 8,
                mem_latency: 30,
            },
            bus_wait_bound: Some(0),
            pipeline: PipelineConfig::default(),
            mode: CoreMode::Single,
        }
    }

    #[test]
    fn from_machine_matches_hand_built_params() {
        // The exp05 machine shape: two scalar cores with tiny L1s over a
        // shared 4-way L2, a round-robin bus (bound N·L−1 = 15) and a
        // 30-cycle predictable memory.
        let mut m = MachineConfig::symmetric(2);
        for c in &mut m.cores {
            c.l1i = CacheConfig::new(8, 1, 16, 1).expect("valid");
            c.l1d = CacheConfig::new(2, 1, 32, 1).expect("valid");
        }
        m.l2.as_mut().expect("has L2").cache = CacheConfig::new(64, 4, 32, 4).expect("valid");
        let derived = StaticParams::from_machine(&m, 0, 0).expect("derives");
        assert_eq!(derived.l1i, CacheConfig::new(8, 1, 16, 1).expect("valid"));
        assert_eq!(derived.l1d, CacheConfig::new(2, 1, 32, 1).expect("valid"));
        assert_eq!(
            derived.l2,
            Some(CacheConfig::new(64, 4, 32, 4).expect("valid"))
        );
        assert_eq!(derived.bus_wait_bound, Some(2 * 8 - 1));
        assert_eq!(
            derived.timings,
            MemTimings {
                l1_hit: 1,
                l2_hit: Some(4),
                bus_transfer: 8,
                mem_latency: 30,
            }
        );
        assert_eq!(derived.mode, CoreMode::Single);
        // And the derived parameters drive the same unlocked analysis.
        let p = bsort(10, Placement::slot(0));
        let direct = wcet_unlocked(&p, &derived, &IpetOptions::default()).expect("analyses");
        assert!(direct > 0);
        // An arbiter that cannot bound the requester is an error.
        let mut unbounded = m.clone();
        unbounded.bus.arbiter = wcet_arbiter::ArbiterKind::FixedPriority { hrt: 0 };
        assert_eq!(
            StaticParams::from_machine(&unbounded, 1, 0).unwrap_err(),
            AnalysisError::Unbounded
        );
    }

    fn tdma2(slot_len: u64) -> Tdma {
        Tdma::new(
            2,
            vec![
                Slot {
                    owner: 0,
                    len: slot_len,
                },
                Slot {
                    owner: 1,
                    len: slot_len,
                },
            ],
        )
        .expect("valid")
    }

    #[test]
    fn offset_aware_beats_offset_blind_on_single_path() {
        let p = single_path(4, 16, Placement::default());
        let mut pr = params();
        let tdma = tdma2(16);
        // Offset-blind: every transaction charged the worst wait.
        pr.bus_wait_bound = tdma.worst_delay(0, pr.timings.bus_transfer);
        let blind = wcet_unlocked(&p, &pr, &IpetOptions::default()).expect("ok");
        let aware = tdma_offset_aware_wcet(&p, &pr, &tdma, 0).expect("ok");
        assert!(
            aware <= blind,
            "offset-aware {aware} must not exceed offset-blind {blind}"
        );
        assert!(aware < blind, "should be strictly tighter here");
    }

    #[test]
    fn single_path_offsets_stay_singleton() {
        let p = single_path(3, 8, Placement::default());
        let pr = params();
        let hierarchy = analyze_hierarchy(&p, &pr.hierarchy_with_l2(pr.plain_l2_input()));
        let costs = block_costs(&p, &hierarchy, &pr.cost_input()).expect("bounded");
        let sizes = offset_state_sizes(&p, &costs, 32);
        // Loop header gets offsets from entry AND from each iteration:
        // blocks may see a handful, but a *multi-path* program sees many
        // more; compare against bsort below.
        let max_single: usize = *sizes.values().max().expect("non-empty");
        let pb = bsort(8, Placement::default());
        let hierarchy_b = analyze_hierarchy(&pb, &pr.hierarchy_with_l2(pr.plain_l2_input()));
        let costs_b = block_costs(&pb, &hierarchy_b, &pr.cost_input()).expect("bounded");
        let sizes_b = offset_state_sizes(&pb, &costs_b, 32);
        let max_multi: usize = *sizes_b.values().max().expect("non-empty");
        assert!(
            max_multi > max_single,
            "multi-path must track more offset states ({max_multi} vs {max_single})"
        );
    }

    #[test]
    fn static_locking_helps_thrashing_task() {
        // A tiny L2 slice that thrashes: locking the hottest lines must
        // not hurt, and usually helps.
        let p = single_path(6, 32, Placement::default());
        let mut pr = params();
        pr.l2 = Some(CacheConfig::new(4, 2, 32, 4).expect("valid"));
        pr.l1d = CacheConfig::new(1, 1, 32, 1).expect("valid"); // force L2 traffic
        pr.l1i = CacheConfig::new(2, 1, 16, 1).expect("valid");
        let unlocked = wcet_unlocked(&p, &pr, &IpetOptions::default()).expect("ok");
        let (locked, plan) = wcet_static_lock(&p, &pr, 1, &IpetOptions::default()).expect("ok");
        assert!(!plan.lines.is_empty());
        assert!(
            locked <= unlocked + plan.preload_lines() as u64 * 50,
            "locking should be competitive: {locked} vs {unlocked}"
        );
    }

    #[test]
    fn dynamic_lock_regions_cover_program() {
        let p = bsort(6, Placement::default());
        let pr = params();
        let (wcet, plan) = wcet_dynamic_lock(&p, &pr, 2, &IpetOptions::default()).expect("ok");
        assert!(wcet > 0);
        for b in p.cfg().block_ids() {
            assert!(plan.region_of(b).is_some());
        }
    }
}
