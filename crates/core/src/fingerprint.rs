//! Content fingerprinting, shared by the engine memo tables, the IPET
//! warm-start context and the scenario matrix deduplicator.

use std::hash::{DefaultHasher, Hash, Hasher};

use wcet_ir::Program;

/// Streams `fmt` output straight into a hasher — no intermediate
/// allocation of the (multi-KB) Debug dump.
struct HashWriter<'a>(&'a mut DefaultHasher);

impl std::fmt::Write for HashWriter<'_> {
    fn write_str(&mut self, s: &str) -> std::fmt::Result {
        self.0.write(s.as_bytes());
        Ok(())
    }
}

/// 128-bit structural fingerprint of any `Debug`-rendered value. Two
/// independently-seeded 64-bit digests of the rendering: a collision
/// between distinct values needs both halves to collide (~2⁻¹²⁸ per
/// pair), which is below any practical concern for memo tables and
/// scenario deduplication.
///
/// The fingerprint is only as discriminating as the type's `Debug`
/// output: values whose rendering elides state hash as equal.
#[must_use]
pub fn debug_fingerprint<T: std::fmt::Debug + ?Sized>(value: &T) -> (u64, u64) {
    use std::fmt::Write as _;
    let mut h1 = DefaultHasher::new();
    let mut h2 = DefaultHasher::new();
    h2.write_u64(0x9e37_79b9_7f4a_7c15); // domain-separate the second half
    for h in [&mut h1, &mut h2] {
        write!(HashWriter(h), "{value:?}").expect("hashing never fails");
    }
    (h1.finish(), h2.finish())
}

/// 128-bit structural fingerprint of a program (name + full content), so
/// memo entries never alias distinct tasks that happen to share a name.
#[must_use]
pub fn program_fingerprint(program: &Program) -> (u64, u64) {
    use std::fmt::Write as _;
    let mut h1 = DefaultHasher::new();
    let mut h2 = DefaultHasher::new();
    h2.write_u64(0x9e37_79b9_7f4a_7c15);
    for h in [&mut h1, &mut h2] {
        program.name().hash(h);
        write!(HashWriter(h), "{program:?}").expect("hashing never fails");
    }
    (h1.finish(), h2.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcet_ir::synth::{fir, Placement};

    #[test]
    fn fingerprints_discriminate_and_repeat() {
        let a = fir(4, 8, Placement::slot(0));
        let b = fir(4, 8, Placement::slot(1));
        assert_eq!(program_fingerprint(&a), program_fingerprint(&a));
        assert_ne!(
            program_fingerprint(&a),
            program_fingerprint(&b),
            "placement is content"
        );
        assert_eq!(debug_fingerprint("x"), debug_fingerprint("x"));
        assert_ne!(debug_fingerprint("x"), debug_fingerprint("y"));
    }
}
