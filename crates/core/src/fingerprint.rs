//! Program content fingerprinting, shared by the engine memo tables and
//! the IPET warm-start context.

use std::hash::{DefaultHasher, Hash, Hasher};

use wcet_ir::Program;

/// Streams `fmt` output straight into a hasher — no intermediate
/// allocation of the (multi-KB) Debug dump.
struct HashWriter<'a>(&'a mut DefaultHasher);

impl std::fmt::Write for HashWriter<'_> {
    fn write_str(&mut self, s: &str) -> std::fmt::Result {
        self.0.write(s.as_bytes());
        Ok(())
    }
}

/// 128-bit structural fingerprint of a program (name + full content), so
/// memo entries never alias distinct tasks that happen to share a name.
/// Two independently-seeded 64-bit digests of the Debug rendering: a
/// collision between distinct programs needs both halves to collide
/// (~2⁻¹²⁸ per pair), which is below any practical concern — the memo
/// never stores enough entries to make a birthday attack on 128 bits
/// relevant.
pub(crate) fn program_fingerprint(program: &Program) -> (u64, u64) {
    use std::fmt::Write as _;
    let mut h1 = DefaultHasher::new();
    let mut h2 = DefaultHasher::new();
    h2.write_u64(0x9e37_79b9_7f4a_7c15); // domain-separate the second half
    for h in [&mut h1, &mut h2] {
        program.name().hash(h);
        write!(HashWriter(h), "{program:?}").expect("hashing never fails");
    }
    (h1.finish(), h2.finish())
}
