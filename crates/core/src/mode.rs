//! Trait-based analysis-mode strategies.
//!
//! The paper's three approach families differ only in two per-task
//! decisions: how much of the shared L2 an unknown/known co-runner set may
//! corrupt (the per-set interference shift), and which bus-delay bound to
//! charge per memory transaction. [`AnalysisMode`] captures exactly those
//! two decisions; [`crate::analyzer::Analyzer::wcet_with`] and
//! [`crate::engine::AnalysisEngine`] are generic over them.
//!
//! * [`Solo`] — classic single-task assumption (paper §2.1, **unsafe** on
//!   shared hardware);
//! * [`Isolated`] — task isolation (paper §3.3): no co-runner knowledge;
//! * [`Joint`] — joint analysis (paper §3.1/§4.1): known co-runner
//!   footprints.

use std::collections::{BTreeMap, BTreeSet};

use wcet_cache::config::LineAddr;
use wcet_cache::partition::PartitionPlan;
use wcet_cache::shared::InterferenceMap;
use wcet_sim::config::MachineConfig;

use crate::analyzer::Analyzer;

/// An L2 footprint: the lines a co-runner may install, per set.
pub type Footprint = BTreeMap<u32, BTreeSet<LineAddr>>;

/// One of the paper's approach families, reduced to the two decisions the
/// per-task analysis actually varies on.
///
/// `Sync` is required so one mode value can drive a whole batch across
/// the [`crate::engine::AnalysisEngine`]'s worker threads.
pub trait AnalysisMode: Sync {
    /// Mode label recorded in [`crate::analyzer::WcetReport::mode`].
    fn name(&self) -> &str;

    /// The per-set L2 must-age shift this mode assumes (empty = none).
    fn l2_shift(&self, machine: &MachineConfig) -> Vec<u32>;

    /// The bus-wait bound override: `Some(b)` forces `b` (including
    /// `Some(None)` = provably unbounded), `None` derives the bound from
    /// the machine's arbiter.
    fn bus_bound(&self, analyzer: &Analyzer, core: usize, thread: usize) -> Option<Option<u64>> {
        let _ = (analyzer, core, thread);
        None
    }
}

/// Classic solo analysis: the task is assumed alone on the machine.
#[derive(Debug, Clone, Copy, Default)]
pub struct Solo;

impl AnalysisMode for Solo {
    fn name(&self) -> &str {
        "solo"
    }

    fn l2_shift(&self, _machine: &MachineConfig) -> Vec<u32> {
        Vec::new()
    }

    fn bus_bound(&self, analyzer: &Analyzer, core: usize, thread: usize) -> Option<Option<u64>> {
        // "Alone" means zero *contention*, but a non-work-conserving
        // arbiter (TDMA/MBBA/wheel) makes a lone requester wait for its
        // slot anyway; that wait must be charged even in solo mode.
        let machine = analyzer.machine();
        let arb = machine.bus.arbiter.build(analyzer.total_slots());
        Some(if arb.work_conserving() {
            Some(0)
        } else {
            arb.worst_case_delay(analyzer.bus_slot(core, thread), machine.bus.transfer)
        })
    }
}

/// Task-isolation analysis: sound with no knowledge of co-runners.
#[derive(Debug, Clone, Copy, Default)]
pub struct Isolated;

impl AnalysisMode for Isolated {
    fn name(&self) -> &str {
        "isolated"
    }

    fn l2_shift(&self, machine: &MachineConfig) -> Vec<u32> {
        match &machine.l2 {
            Some(l2) if matches!(l2.partition, PartitionPlan::Shared) => {
                // Unknown co-runners can evict anything.
                vec![l2.cache.ways(); l2.cache.sets() as usize]
            }
            _ => Vec::new(),
        }
    }
}

/// Joint analysis over known co-runner L2 footprints.
#[derive(Debug, Clone, Default)]
pub struct Joint {
    corunners: Vec<Footprint>,
}

impl Joint {
    /// A joint mode interfering with the given co-runner footprints
    /// (typically from [`Analyzer::l2_footprint`]).
    #[must_use]
    pub fn new(corunners: impl IntoIterator<Item = Footprint>) -> Joint {
        Joint {
            corunners: corunners.into_iter().collect(),
        }
    }

    /// The co-runner footprints.
    #[must_use]
    pub fn corunners(&self) -> &[Footprint] {
        &self.corunners
    }
}

impl AnalysisMode for Joint {
    fn name(&self) -> &str {
        "joint"
    }

    fn l2_shift(&self, machine: &MachineConfig) -> Vec<u32> {
        joint_shift(machine, self.corunners.iter())
    }
}

/// Borrowing variant of [`Joint`]: the same strategy over footprint
/// references, for callers (like [`Analyzer::wcet_joint`]) that already
/// hold footprints elsewhere and should not clone them per call.
#[derive(Debug, Clone, Copy)]
pub struct JointRefs<'a>(pub &'a [&'a Footprint]);

impl AnalysisMode for JointRefs<'_> {
    fn name(&self) -> &str {
        "joint"
    }

    fn l2_shift(&self, machine: &MachineConfig) -> Vec<u32> {
        joint_shift(machine, self.0.iter().copied())
    }
}

fn joint_shift<'a>(
    machine: &MachineConfig,
    corunners: impl Iterator<Item = &'a Footprint>,
) -> Vec<u32> {
    match &machine.l2 {
        Some(l2) => {
            let im = InterferenceMap::from_footprints(corunners);
            im.shift_vector(l2.cache.sets(), l2.cache.ways())
        }
        None => Vec::new(),
    }
}
