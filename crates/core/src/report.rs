//! Experiment tables: the uniform output format of the `wcet-bench`
//! binaries (markdown-style pipe tables, deterministic ordering).

use std::fmt;

/// A rendered experiment table.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Table {
    /// Table title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows (each must match `headers` in length).
    pub rows: Vec<Vec<String>>,
    /// Free-form footnotes.
    pub notes: Vec<String>,
}

impl Table {
    /// Creates a table with the given title and headers.
    #[must_use]
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| (*s).to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the header length.
    pub fn row<I: IntoIterator<Item = String>>(&mut self, cells: I) -> &mut Self {
        let row: Vec<String> = cells.into_iter().collect();
        assert_eq!(row.len(), self.headers.len(), "row/header length mismatch");
        self.rows.push(row);
        self
    }

    /// Appends a footnote.
    pub fn note(&mut self, note: impl Into<String>) -> &mut Self {
        self.notes.push(note.into());
        self
    }

    /// A two-column key/value summary table (used by the scenario CLI for
    /// run summaries).
    #[must_use]
    pub fn kv<K, V, I>(title: impl Into<String>, pairs: I) -> Table
    where
        K: Into<String>,
        V: Into<String>,
        I: IntoIterator<Item = (K, V)>,
    {
        let mut t = Table::new(title, &["key", "value"]);
        for (k, v) in pairs {
            t.row([k.into(), v.into()]);
        }
        t
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "## {}", self.title)?;
        writeln!(f)?;
        // Column widths.
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let render = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (i, cell) in cells.iter().enumerate() {
                write!(f, " {cell:width$} |", width = widths[i])?;
            }
            writeln!(f)
        };
        render(f, &self.headers)?;
        write!(f, "|")?;
        for w in &widths {
            write!(f, "{:-<width$}|", "", width = w + 2)?;
        }
        writeln!(f)?;
        for row in &self.rows {
            render(f, row)?;
        }
        for note in &self.notes {
            writeln!(f, "\n> {note}")?;
        }
        Ok(())
    }
}

/// Formats a ratio as `x.xx×`.
#[must_use]
pub fn ratio(n: u64, d: u64) -> String {
    format!("{:.2}×", n as f64 / d.max(1) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_markdown_pipe_table() {
        let mut t = Table::new("Demo", &["workload", "wcet"]);
        t.row(["fir".into(), "1234".into()]);
        t.row(["a-long-name".into(), "9".into()]);
        t.note("all cycles");
        let s = t.to_string();
        assert!(s.contains("## Demo"));
        assert!(s.contains("| workload    | wcet |"));
        assert!(s.contains("| a-long-name | 9    |"));
        assert!(s.contains("> all cycles"));
        // Separator spans both columns.
        assert!(s.contains("|-"));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn row_length_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(["only-one".into()]);
    }

    #[test]
    fn kv_table() {
        let t = Table::kv("Summary", [("cells", "24"), ("sound", "24/24")]);
        let s = t.to_string();
        assert!(s.contains("| cells | 24    |"));
        assert!(s.contains("| sound | 24/24 |"));
    }

    #[test]
    fn ratio_format() {
        assert_eq!(ratio(3, 2), "1.50×");
        assert_eq!(ratio(5, 0), "5.00×");
    }
}
