//! Joint WCET analysis of cooperatively-multithreaded applications via a
//! global yield-graph ILP, after Crowley & Baer \[7\] (paper §5.1).
//!
//! Each thread's CFG is augmented with *yield edges*: a block containing a
//! `Yield` may transfer control to any resume point of any other thread.
//! All threads' IPET systems plus the yield-edge coupling form one global
//! ILP whose optimum bounds the **overall** WCET (makespan) of the thread
//! set on a yield-switching core.
//!
//! The paper's §5.1 verdict — "such an approach is not scalable" — is a
//! claim about *model growth*: yield-edge variables grow with
//! `threads² × yield sites`, which experiment E07 measures together with
//! solve effort.

use std::collections::BTreeMap;
use std::fmt;

use wcet_ilp::{solve_ilp, CmpOp, IlpConfig, IlpError, LinExpr, LpModel, Rat, SolveStatus, VarId};
use wcet_ir::{BlockId, Edge, Instr, Program};
use wcet_pipeline::cost::BlockCosts;

/// Result of a joint yield-graph analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct YieldReport {
    /// Upper bound on the makespan of the whole thread set, in cycles.
    pub wcet: u64,
    /// Number of yield-edge variables in the global model.
    pub yield_edges: usize,
    /// Total model variables.
    pub num_vars: usize,
    /// Total model constraints.
    pub num_constraints: usize,
    /// Branch-and-bound nodes used.
    pub solver_nodes: usize,
}

/// Yield-graph failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum YieldError {
    /// The solver failed.
    Ilp(IlpError),
    /// A thread's flow system is infeasible or unbounded.
    BadModel,
    /// Mismatched inputs (one cost set per thread required).
    InputMismatch,
}

impl fmt::Display for YieldError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            YieldError::Ilp(e) => write!(f, "{e}"),
            YieldError::BadModel => f.write_str("yield-graph flow system infeasible or unbounded"),
            YieldError::InputMismatch => f.write_str("need exactly one cost set per thread"),
        }
    }
}

impl std::error::Error for YieldError {}

impl From<IlpError> for YieldError {
    fn from(e: IlpError) -> Self {
        YieldError::Ilp(e)
    }
}

/// Blocks of `program` containing a `Yield` instruction.
#[must_use]
pub fn yield_blocks(program: &Program) -> Vec<BlockId> {
    program
        .cfg()
        .iter()
        .filter(|(_, blk)| blk.instrs().iter().any(|i| matches!(i, Instr::Yield)))
        .map(|(b, _)| b)
        .collect()
}

/// Computes the joint WCET bound of `threads` on a yield-switching core.
///
/// `costs[i]` must be the block costs of `threads[i]` (computed with the
/// core's memory parameters); `switch_cost` is the context-switch penalty
/// charged per taken yield edge.
///
/// # Errors
///
/// See [`YieldError`].
pub fn joint_yield_wcet(
    threads: &[&Program],
    costs: &[&BlockCosts],
    switch_cost: u64,
    ilp: IlpConfig,
) -> Result<YieldReport, YieldError> {
    if threads.len() != costs.len() || threads.is_empty() {
        return Err(YieldError::InputMismatch);
    }
    let mut model = LpModel::new();
    let mut obj = LinExpr::new();
    let mut yield_edge_vars: Vec<VarId> = Vec::new();

    // Per-thread IPET systems (each thread executes exactly once).
    for (tid, (program, cost)) in threads.iter().zip(costs).enumerate() {
        let cfg = program.cfg();
        let x: BTreeMap<BlockId, VarId> = cfg
            .block_ids()
            .map(|b| (b, model.add_int_var(format!("t{tid}_x_{b}"))))
            .collect();
        let f: BTreeMap<Edge, VarId> = cfg
            .edges()
            .into_iter()
            .map(|e| (e, model.add_int_var(format!("t{tid}_f_{e}"))))
            .collect();
        let f_entry = model.add_int_var(format!("t{tid}_fin"));
        let f_exit: BTreeMap<BlockId, VarId> = cfg
            .exits()
            .iter()
            .map(|&b| (b, model.add_int_var(format!("t{tid}_fx_{b}"))))
            .collect();
        model.add_constraint(LinExpr::new().with_term(f_entry, 1), CmpOp::Eq, 1);
        for b in cfg.block_ids() {
            let mut inflow = LinExpr::new();
            for &p in cfg.predecessors(b) {
                inflow.add_term(f[&Edge::new(p, b)], 1);
            }
            if b == cfg.entry() {
                inflow.add_term(f_entry, 1);
            }
            inflow.add_term(x[&b], -1);
            model.add_constraint(inflow, CmpOp::Eq, 0);
            let mut outflow = LinExpr::new();
            for &s in cfg.successors(b) {
                outflow.add_term(f[&Edge::new(b, s)], 1);
            }
            if let Some(&fx) = f_exit.get(&b) {
                outflow.add_term(fx, 1);
            }
            outflow.add_term(x[&b], -1);
            model.add_constraint(outflow, CmpOp::Eq, 0);
        }
        let loops = program.loops();
        for l in loops.loops() {
            let bound = program.flow().bound(l.header).expect("validated bounds");
            let mut expr = LinExpr::new();
            for e in &l.back_edges {
                expr.add_term(f[e], 1);
            }
            for e in &l.entry_edges {
                expr.add_term(f[e], -Rat::from(bound.0));
            }
            if l.header == cfg.entry() {
                expr.add_term(f_entry, -Rat::from(bound.0));
            }
            model.add_constraint(expr, CmpOp::Le, 0);
        }
        for (b, &v) in &x {
            obj.add_term(v, Rat::from(cost.cost(*b)));
        }
        for (&scope, &extra) in &cost.loop_entry_extras {
            if extra == 0 {
                continue;
            }
            if let Some(l) = loops.headed_by(scope) {
                for e in &loops.loop_of(l).entry_edges {
                    obj.add_term(f[e], Rat::from(extra));
                }
                if scope == cfg.entry() {
                    obj.add_term(f_entry, Rat::from(extra));
                }
            } else {
                obj.add_term(f_entry, Rat::from(extra));
            }
        }

        // Yield edges: every execution of a yield block transfers control
        // to *some* other thread (or resumes self if alone). One variable
        // per (yield site, target thread) — this is the quadratic growth
        // the paper's scalability critique is about.
        for yb in yield_blocks(program) {
            let mut transfer_sum = LinExpr::new();
            for other in 0..threads.len() {
                if other == tid && threads.len() > 1 {
                    continue;
                }
                let y = model.add_int_var(format!("t{tid}_y_{yb}_to_t{other}"));
                yield_edge_vars.push(y);
                transfer_sum.add_term(y, 1);
                obj.add_term(y, Rat::from(switch_cost));
            }
            // Σ transfers = executions of the yield block.
            transfer_sum.add_term(x[&yb], -1);
            model.add_constraint(transfer_sum, CmpOp::Eq, 0);
        }
    }

    model.set_objective(obj);
    let num_vars = model.num_vars();
    let num_constraints = model.num_constraints();
    let yield_edges = yield_edge_vars.len();
    let (solution, stats) = solve_ilp(&model, ilp)?;
    if solution.status != SolveStatus::Optimal {
        return Err(YieldError::BadModel);
    }
    // Makespan bound: all threads' path costs plus switch overheads, plus
    // the largest per-thread startup (threads share one pipeline).
    let startup = costs.iter().map(|c| c.startup).max().unwrap_or(0);
    let wcet = u64::try_from(solution.objective.ceil().max(0)).unwrap_or(u64::MAX) + startup;
    Ok(YieldReport {
        wcet,
        yield_edges,
        num_vars,
        num_constraints,
        solver_nodes: stats.nodes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcet_ir::builder::CfgBuilder;
    use wcet_ir::cfg::Terminator;
    use wcet_ir::flow::{FlowFacts, LoopBound};
    use wcet_ir::isa::{r, Cond, Operand};
    use wcet_ir::program::Layout;
    use wcet_ir::Addr;

    /// A loop of `iters` iterations whose body yields once per iteration.
    fn yielding_worker(iters: u64, code_base: u64, name: &str) -> Program {
        let mut cb = CfgBuilder::new();
        let entry = cb.add_block();
        let header = cb.add_block();
        let body = cb.add_block();
        let exit = cb.add_block();
        cb.push(entry, Instr::LoadImm { dst: r(1), imm: 0 });
        cb.terminate(entry, Terminator::Jump(header));
        cb.terminate(
            header,
            Terminator::Branch {
                cond: Cond::Lt,
                lhs: r(1),
                rhs: Operand::Imm(iters as i64),
                taken: body,
                not_taken: exit,
            },
        );
        cb.push(body, Instr::Nop);
        cb.push(body, Instr::Yield);
        cb.push(
            body,
            Instr::Alu {
                op: wcet_ir::AluOp::Add,
                dst: r(1),
                lhs: r(1),
                rhs: 1.into(),
            },
        );
        cb.terminate(body, Terminator::Jump(header));
        cb.terminate(exit, Terminator::Return);
        let cfg = cb.build(entry).expect("valid");
        let mut facts = FlowFacts::new();
        facts.set_bound(BlockId::from_index(1), LoopBound(iters));
        Program::new(
            name,
            cfg,
            facts,
            Layout {
                code_base: Addr(code_base),
            },
        )
        .expect("valid")
    }

    fn unit_costs(p: &Program) -> BlockCosts {
        BlockCosts {
            base: p
                .cfg()
                .iter()
                .map(|(b, blk)| (b, blk.fetch_slots() as u64))
                .collect(),
            loop_entry_extras: BTreeMap::new(),
            startup: 4,
        }
    }

    #[test]
    fn finds_yield_blocks() {
        let p = yielding_worker(4, 0x1000, "w");
        assert_eq!(yield_blocks(&p), vec![BlockId::from_index(2)]);
    }

    #[test]
    fn joint_wcet_covers_sum_of_threads() {
        let a = yielding_worker(4, 0x1000, "a");
        let b = yielding_worker(6, 0x2000, "b");
        let ca = unit_costs(&a);
        let cb_ = unit_costs(&b);
        let report =
            joint_yield_wcet(&[&a, &b], &[&ca, &cb_], 3, IlpConfig::default()).expect("solves");
        // Path cost of each thread alone (no switches).
        let solo = |p: &Program, c: &BlockCosts| {
            crate::ipet::wcet_ipet(p, c, &crate::ipet::IpetOptions::default())
                .expect("solves")
                .wcet
        };
        let sa = solo(&a, &ca);
        let sb = solo(&b, &cb_);
        // Makespan bound must cover both threads' work plus switch costs.
        assert!(report.wcet >= sa + sb - ca.startup.min(cb_.startup));
        // 4 + 6 yields, 3 cycles each.
        assert!(report.wcet >= sa + sb - 4 + 30 - 30); // sanity: non-trivial
        assert_eq!(report.yield_edges, 2); // one site per thread, one target each
    }

    #[test]
    fn yield_edges_grow_quadratically() {
        let mk = |n: usize| -> (Vec<Program>, Vec<BlockCosts>) {
            let ps: Vec<Program> = (0..n)
                .map(|i| yielding_worker(3, 0x1000 * (i as u64 + 1), &format!("w{i}")))
                .collect();
            let cs = ps.iter().map(unit_costs).collect();
            (ps, cs)
        };
        let count = |n: usize| {
            let (ps, cs) = mk(n);
            let pr: Vec<&Program> = ps.iter().collect();
            let cr: Vec<&BlockCosts> = cs.iter().collect();
            joint_yield_wcet(&pr, &cr, 3, IlpConfig::default())
                .expect("solves")
                .yield_edges
        };
        // n threads × 1 site × (n-1) targets.
        assert_eq!(count(2), 2);
        assert_eq!(count(3), 6);
        assert_eq!(count(4), 12);
    }

    #[test]
    fn switch_cost_scales_bound() {
        let a = yielding_worker(5, 0x1000, "a");
        let b = yielding_worker(5, 0x2000, "b");
        let ca = unit_costs(&a);
        let cb_ = unit_costs(&b);
        let cheap = joint_yield_wcet(&[&a, &b], &[&ca, &cb_], 0, IlpConfig::default())
            .expect("solves")
            .wcet;
        let pricey = joint_yield_wcet(&[&a, &b], &[&ca, &cb_], 10, IlpConfig::default())
            .expect("solves")
            .wcet;
        // 10 yields total, 10 cycles each.
        assert_eq!(pricey, cheap + 100);
    }

    #[test]
    fn input_mismatch_rejected() {
        let a = yielding_worker(2, 0x1000, "a");
        let ca = unit_costs(&a);
        assert_eq!(
            joint_yield_wcet(&[&a], &[&ca, &ca], 0, IlpConfig::default()).unwrap_err(),
            YieldError::InputMismatch
        );
        assert_eq!(
            joint_yield_wcet(&[], &[], 0, IlpConfig::default()).unwrap_err(),
            YieldError::InputMismatch
        );
    }
}
