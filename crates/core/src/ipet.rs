//! WCET computation by the Implicit Path Enumeration Technique
//! (Li & Malik \[17\]; paper §2.1).
//!
//! Execution counts of blocks (`x_b`) and edges (`f_e`) are ILP variables;
//! structural flow conservation, loop bounds and infeasible-path exclusions
//! are linear constraints; the WCET is the maximum of
//! `Σ cost_b · x_b + Σ persistence-extras · loop-entries + startup`.

use std::collections::BTreeMap;
use std::fmt;

use wcet_ilp::{
    solve_ilp, solve_lp, CmpOp, ContextStats, IlpConfig, IlpError, LinExpr, LpModel, Rat,
    SolveStats, SolveStatus, VarId,
};
use wcet_ir::{BlockId, Edge, Program};
use wcet_pipeline::cost::BlockCosts;

use crate::fingerprint::program_fingerprint;

/// A warm-start cache for the IPET hot path, keyed by program content.
///
/// Interference/partition/lock sweeps re-analyse one task under many
/// cost models. The flow-constraint system of the IPET ILP depends only
/// on the program (CFG, loop bounds, infeasible pairs) — costs shape the
/// *objective* alone — so every sweep point solves the same constraint
/// system. `SolveContext` caches its phase-1 feasible basis (via
/// [`wcet_ilp::SolveContext`]) and every re-solve skips phase 1.
/// Results are bit-identical to cold solves by construction; a context
/// is a pure accelerator and can be shared across threads.
#[derive(Debug, Default)]
pub struct SolveContext {
    inner: wcet_ilp::SolveContext,
}

impl SolveContext {
    /// Creates an empty context.
    #[must_use]
    pub fn new() -> SolveContext {
        SolveContext::default()
    }

    /// Warm-hit / cold-solve counters.
    #[must_use]
    pub fn stats(&self) -> ContextStats {
        self.inner.stats()
    }

    /// Summed per-solve effort counters (pivots, certified f64 solves,
    /// fallbacks, eta refactorizations…) of every IPET solve served
    /// through this context — engine-family *and* statically-controlled
    /// paths alike.
    #[must_use]
    pub fn totals(&self) -> SolveStats {
        self.inner.totals()
    }
}

/// IPET options.
#[derive(Debug, Clone, Copy)]
pub struct IpetOptions {
    /// Solve to integrality (exact) or accept the LP relaxation (faster,
    /// still a sound upper bound since relaxation ≥ ILP optimum).
    pub integer: bool,
    /// Branch-and-bound limits.
    pub ilp: IlpConfig,
}

impl Default for IpetOptions {
    fn default() -> Self {
        IpetOptions {
            integer: true,
            ilp: IlpConfig::default(),
        }
    }
}

/// IPET failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IpetError {
    /// The ILP solver failed (node limit / unbounded model).
    Ilp(IlpError),
    /// The flow system is infeasible (inconsistent flow facts).
    Infeasible,
    /// The model is unbounded (missing loop bound — cannot happen for
    /// validated programs).
    Unbounded,
}

impl fmt::Display for IpetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IpetError::Ilp(e) => write!(f, "{e}"),
            IpetError::Infeasible => f.write_str("IPET flow system is infeasible"),
            IpetError::Unbounded => {
                f.write_str("IPET objective is unbounded (missing loop bound?)")
            }
        }
    }
}

impl std::error::Error for IpetError {}

impl From<IlpError> for IpetError {
    fn from(e: IlpError) -> Self {
        IpetError::Ilp(e)
    }
}

/// A computed WCET bound with solution details.
///
/// Equality compares the bound itself (wcet, counts, model size, nodes)
/// and ignores [`solver`](WcetBound::solver): a warm-started solve that
/// pivoted less still produced the same bound.
#[derive(Debug, Clone)]
pub struct WcetBound {
    /// The bound, in cycles (startup included).
    pub wcet: u64,
    /// Worst-case execution counts per block (empty for LP relaxations
    /// with fractional optima).
    pub block_counts: BTreeMap<BlockId, u64>,
    /// Model size: variables.
    pub num_vars: usize,
    /// Model size: constraints.
    pub num_constraints: usize,
    /// Branch-and-bound nodes (1 when the relaxation was integral; 0 for
    /// pure LP solves).
    pub solver_nodes: usize,
    /// Solver-effort counters (pivots, warm starts, phase-1 skips).
    pub solver: SolveStats,
}

impl PartialEq for WcetBound {
    fn eq(&self, other: &WcetBound) -> bool {
        self.wcet == other.wcet
            && self.block_counts == other.block_counts
            && self.num_vars == other.num_vars
            && self.num_constraints == other.num_constraints
            && self.solver_nodes == other.solver_nodes
    }
}

impl Eq for WcetBound {}

/// Computes the WCET bound of `program` under the given block costs.
///
/// # Errors
///
/// Returns [`IpetError`] if the flow system is infeasible/unbounded or the
/// solver gives up.
pub fn wcet_ipet(
    program: &Program,
    costs: &BlockCosts,
    opts: &IpetOptions,
) -> Result<WcetBound, IpetError> {
    wcet_ipet_in(program, costs, opts, None)
}

/// [`wcet_ipet`] through a warm-start [`SolveContext`]: re-solves of the
/// same program (any cost model) skip simplex phase 1. Bit-identical
/// results to the cold path.
///
/// # Errors
///
/// See [`wcet_ipet`].
pub fn wcet_ipet_ctx(
    program: &Program,
    costs: &BlockCosts,
    opts: &IpetOptions,
    ctx: &SolveContext,
) -> Result<WcetBound, IpetError> {
    wcet_ipet_in(program, costs, opts, Some(ctx))
}

fn wcet_ipet_in(
    program: &Program,
    costs: &BlockCosts,
    opts: &IpetOptions,
    ctx: Option<&SolveContext>,
) -> Result<WcetBound, IpetError> {
    let cfg = program.cfg();
    let mut model = LpModel::new();

    // Variables.
    let x: BTreeMap<BlockId, VarId> = cfg
        .block_ids()
        .map(|b| (b, model.add_int_var(format!("x_{b}"))))
        .collect();
    let edges = cfg.edges();
    let f: BTreeMap<Edge, VarId> = edges
        .iter()
        .map(|&e| (e, model.add_int_var(format!("f_{e}"))))
        .collect();
    let f_entry = model.add_int_var("f_entry");
    let f_exit: BTreeMap<BlockId, VarId> = cfg
        .exits()
        .iter()
        .map(|&b| (b, model.add_int_var(format!("fx_{b}"))))
        .collect();

    // The task executes exactly once.
    model.add_constraint(LinExpr::new().with_term(f_entry, 1), CmpOp::Eq, 1);

    // Flow conservation: inflow = x_b = outflow.
    for b in cfg.block_ids() {
        let mut inflow = LinExpr::new();
        for &p in cfg.predecessors(b) {
            inflow.add_term(f[&Edge::new(p, b)], 1);
        }
        if b == cfg.entry() {
            inflow.add_term(f_entry, 1);
        }
        let mut outflow = LinExpr::new();
        for &s in cfg.successors(b) {
            outflow.add_term(f[&Edge::new(b, s)], 1);
        }
        if let Some(&fx) = f_exit.get(&b) {
            outflow.add_term(fx, 1);
        }
        let mut in_minus_x = inflow.clone();
        in_minus_x.add_term(x[&b], -1);
        model.add_constraint(in_minus_x, CmpOp::Eq, 0);
        let mut out_minus_x = outflow;
        out_minus_x.add_term(x[&b], -1);
        model.add_constraint(out_minus_x, CmpOp::Eq, 0);
    }

    // Loop bounds: Σ back-edge flow ≤ bound × Σ entry flow.
    let loops = program.loops();
    for l in loops.loops() {
        let bound = program
            .flow()
            .bound(l.header)
            .expect("validated program has bounds");
        let mut expr = LinExpr::new();
        for e in &l.back_edges {
            expr.add_term(f[e], 1);
        }
        for e in &l.entry_edges {
            expr.add_term(f[e], -Rat::from(bound.0));
        }
        if l.header == cfg.entry() {
            expr.add_term(f_entry, -Rat::from(bound.0));
        }
        model.add_constraint(expr, CmpOp::Le, 0);
    }

    // Infeasible pairs (only sound for once-per-run edges: both source
    // blocks outside all loops).
    for pair in program.flow().infeasible_pairs() {
        let once = |e: &Edge| program.max_block_count(e.from) <= 1;
        if once(&pair.a) && once(&pair.b) {
            let expr = LinExpr::new()
                .with_term(f[&pair.a], 1)
                .with_term(f[&pair.b], 1);
            model.add_constraint(expr, CmpOp::Le, 1);
        }
    }

    // Objective: block costs + persistence extras on loop entries.
    let mut obj = LinExpr::new();
    for (b, &v) in &x {
        obj.add_term(v, Rat::from(costs.cost(*b)));
    }
    for (&scope, &extra) in &costs.loop_entry_extras {
        if extra == 0 {
            continue;
        }
        match loops.headed_by(scope) {
            Some(l) => {
                for e in &loops.loop_of(l).entry_edges {
                    obj.add_term(f[e], Rat::from(extra));
                }
                if scope == cfg.entry() {
                    obj.add_term(f_entry, Rat::from(extra));
                }
            }
            None => {
                // Scope is not a loop header (residual region): charge once.
                obj.add_term(f_entry, Rat::from(extra));
            }
        }
    }
    model.set_objective(obj);

    let num_vars = model.num_vars();
    let num_constraints = model.num_constraints();

    let (solution, nodes) = match ctx {
        Some(ctx) => {
            let key = program_fingerprint(program);
            if opts.integer {
                let (s, stats) = ctx.inner.solve_ilp(key, &model, opts.ilp)?;
                (s, stats.nodes)
            } else {
                (ctx.inner.solve_lp(key, &model), 0)
            }
        }
        None => {
            if opts.integer {
                let (s, stats) = solve_ilp(&model, opts.ilp)?;
                (s, stats.nodes)
            } else {
                (solve_lp(&model), 0)
            }
        }
    };
    match solution.status {
        SolveStatus::Infeasible => return Err(IpetError::Infeasible),
        SolveStatus::Unbounded => return Err(IpetError::Unbounded),
        SolveStatus::Optimal => {}
    }

    // Sound rounding: the WCET is an upper bound, so take the ceiling.
    let obj = solution.objective;
    let wcet_path = u64::try_from(obj.ceil().max(0)).unwrap_or(u64::MAX);
    let block_counts = if opts.integer {
        x.iter()
            .map(|(&b, &v)| {
                let val = solution.value(v);
                (b, u64::try_from(val.to_integer().unwrap_or(0)).unwrap_or(0))
            })
            .collect()
    } else {
        BTreeMap::new()
    };

    Ok(WcetBound {
        wcet: wcet_path + costs.startup,
        block_counts,
        num_vars,
        num_constraints,
        solver_nodes: nodes,
        solver: solution.stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcet_ilp::longest_path;
    use wcet_ir::interp::execute;
    use wcet_ir::synth::{bsort, crc, matmul, twin_diamonds, Placement};
    use wcet_pipeline::cost::BlockCosts;

    /// Unit-cost blocks, no extras.
    fn unit_costs(p: &Program) -> BlockCosts {
        BlockCosts {
            base: p.cfg().block_ids().map(|b| (b, 1)).collect(),
            loop_entry_extras: BTreeMap::new(),
            startup: 0,
        }
    }

    /// Per-block cost = number of fetch slots (so WCET ≈ instruction count
    /// on a perfect machine).
    fn slot_costs(p: &Program) -> BlockCosts {
        BlockCosts {
            base: p
                .cfg()
                .iter()
                .map(|(b, blk)| (b, blk.fetch_slots() as u64))
                .collect(),
            loop_entry_extras: BTreeMap::new(),
            startup: 0,
        }
    }

    #[test]
    fn loop_free_matches_dag_longest_path() {
        let p = twin_diamonds(6, Placement::default());
        // Slot costs: the heavy arms are genuinely heavier.
        let costs = slot_costs(&p);
        let bound = wcet_ipet(&p, &costs, &IpetOptions::default()).expect("solves");
        // Oracle: DAG longest path with unit node weights, ignoring the
        // infeasible-pair constraints (so oracle >= IPET).
        let cfg = p.cfg();
        let edges: Vec<(usize, usize, u64)> = cfg
            .edges()
            .into_iter()
            .map(|e| (e.from.index(), e.to.index(), 0))
            .collect();
        let weights: Vec<u64> = cfg.block_ids().map(|b| costs.cost(b)).collect();
        let sinks: Vec<usize> = cfg.exits().iter().map(|b| b.index()).collect();
        let oracle = longest_path(
            cfg.num_blocks(),
            &edges,
            &weights,
            cfg.entry().index(),
            &sinks,
        )
        .expect("acyclic")
        .expect("reachable");
        assert!(bound.wcet <= oracle);
        // twin_diamonds: both heavy arms lie on mutually-exclusive paths,
        // so IPET with exclusions must be strictly below the free longest
        // path.
        assert!(
            bound.wcet < oracle,
            "exclusion must bite: {} vs {oracle}",
            bound.wcet
        );
    }

    #[test]
    fn counts_respect_loop_bounds() {
        let p = matmul(3, Placement::default());
        let costs = unit_costs(&p);
        let bound = wcet_ipet(&p, &costs, &IpetOptions::default()).expect("solves");
        // kbody executes at most n^3 = 27 times.
        let kbody = BlockId::from_index(6);
        assert_eq!(bound.block_counts[&kbody], 27);
    }

    #[test]
    fn ipet_bounds_interpreter_slot_counts() {
        // With cost = fetch slots, the IPET bound must dominate the
        // interpreter's executed slots for every kernel.
        let pl = Placement::default();
        for p in [crc(16, pl), bsort(6, pl), matmul(3, pl)] {
            let costs = slot_costs(&p);
            let bound = wcet_ipet(&p, &costs, &IpetOptions::default()).expect("solves");
            let run = execute(&p, 5_000_000).expect("terminates");
            assert!(
                bound.wcet >= run.steps,
                "{}: bound {} < executed {}",
                p.name(),
                bound.wcet,
                run.steps
            );
        }
    }

    #[test]
    fn lp_relaxation_dominates_ilp() {
        let p = crc(16, Placement::default());
        let costs = slot_costs(&p);
        let ilp = wcet_ipet(&p, &costs, &IpetOptions::default()).expect("solves");
        let lp = wcet_ipet(
            &p,
            &costs,
            &IpetOptions {
                integer: false,
                ilp: IlpConfig::default(),
            },
        )
        .expect("solves");
        assert!(lp.wcet >= ilp.wcet);
        assert_eq!(lp.solver_nodes, 0);
    }

    #[test]
    fn startup_added() {
        let p = twin_diamonds(1, Placement::default());
        let mut costs = unit_costs(&p);
        costs.startup = 100;
        let with = wcet_ipet(&p, &costs, &IpetOptions::default()).expect("solves");
        costs.startup = 0;
        let without = wcet_ipet(&p, &costs, &IpetOptions::default()).expect("solves");
        assert_eq!(with.wcet, without.wcet + 100);
    }

    #[test]
    fn warm_context_is_bit_identical_to_cold() {
        // Same program, swept cost models — the second and later solves
        // hit the context's cached basis and must reproduce the cold
        // bound field-for-field (block counts included).
        let p = crc(16, Placement::default());
        let ctx = SolveContext::new();
        for scale in 1u64..=4 {
            let mut costs = slot_costs(&p);
            for c in costs.base.values_mut() {
                *c *= scale;
            }
            let warm = wcet_ipet_ctx(&p, &costs, &IpetOptions::default(), &ctx).expect("solves");
            let cold = wcet_ipet(&p, &costs, &IpetOptions::default()).expect("solves");
            assert_eq!(warm, cold);
            assert_eq!(warm.block_counts, cold.block_counts);
        }
        let stats = ctx.stats();
        assert_eq!(stats.cold_solves, 1);
        assert_eq!(stats.warm_hits, 3);
        // Warm solves really skipped phase 1.
        let mut costs = slot_costs(&p);
        for c in costs.base.values_mut() {
            *c *= 5;
        }
        let warm = wcet_ipet_ctx(&p, &costs, &IpetOptions::default(), &ctx).expect("solves");
        assert!(warm.solver.phase1_skips > 0);
        assert_eq!(warm.solver.phase1_pivots, 0);
    }

    #[test]
    fn persistence_extras_charged_per_entry() {
        let p = matmul(2, Placement::default());
        let mut costs = unit_costs(&p);
        // Attach an extra of 50 to the innermost loop header (kh = block 5);
        // it has n^2 = 4 entries.
        let kh = BlockId::from_index(5);
        costs.loop_entry_extras.insert(kh, 50);
        let with = wcet_ipet(&p, &costs, &IpetOptions::default()).expect("solves");
        costs.loop_entry_extras.clear();
        let without = wcet_ipet(&p, &costs, &IpetOptions::default()).expect("solves");
        assert_eq!(with.wcet, without.wcet + 4 * 50);
    }
}
