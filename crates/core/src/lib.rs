//! # wcet-core — static WCET analysis of parallel architectures
//!
//! The toolkit's synthesis of *"An Overview of Approaches Towards the
//! Timing Analysability of Parallel Architectures"* (Rochange, PPES 2011):
//! one [`Analyzer`] exposing the paper's three approach families over a
//! machine description shared with the cycle-level simulator —
//!
//! * **joint analysis** (§3.1): [`Analyzer::wcet_joint`] for shared-cache
//!   interference (Yan & Zhang; Li et al.; Hardy et al., optionally
//!   lifetime-refined via `wcet-sched`) and [`yieldgraph`] for
//!   cooperatively-multithreaded thread sets (Crowley & Baer);
//! * **statically-controlled sharing** (§3.2): [`static_ctrl`] —
//!   static/dynamic cache locking (Suhendra & Mitra) and TDMA
//!   offset-aware bus analysis with the offset-state-explosion measurement
//!   (Rosén et al. / Rochange's critique);
//! * **task isolation** (§3.3): [`Analyzer::wcet_isolated`] — partitioned
//!   storage plus workload-independent arbiter bounds (round-robin
//!   `N·L−1`, MBBA, CarCore fixed priority, PRET memory wheel).
//!
//! WCETs are computed by IPET ([`ipet`]) over exact rational ILP, and the
//! [`validate`] harness checks every bound against the simulator.
//!
//! ## Example
//!
//! ```
//! use wcet_core::analyzer::Analyzer;
//! use wcet_sim::config::MachineConfig;
//! use wcet_ir::synth::{fir, Placement};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let machine = MachineConfig::symmetric(4);
//! let analyzer = Analyzer::new(machine);
//! let task = fir(4, 16, Placement::slot(0));
//! let report = analyzer.wcet_isolated(&task, 0, 0)?;
//! assert!(report.wcet > 0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analyzer;
pub mod bcet;
pub mod engine;
pub mod fingerprint;
pub mod ipet;
pub mod mode;
pub mod report;
pub mod static_ctrl;
pub mod validate;
pub mod yieldgraph;

pub use analyzer::{AnalysisError, Analyzer, TaskContext, WcetReport};
pub use bcet::{bcet_ipet, best_block_costs};
pub use engine::{AnalysisEngine, Job, MemoDomain, MemoStats, SolverStats, TaskArtifacts};
pub use fingerprint::{debug_fingerprint, program_fingerprint};
pub use ipet::{wcet_ipet, wcet_ipet_ctx, IpetError, IpetOptions, SolveContext, WcetBound};
pub use mode::{AnalysisMode, Footprint, Isolated, Joint, JointRefs, Solo};
pub use report::Table;
pub use validate::{observe, run_machine, Observation};
pub use yieldgraph::{joint_yield_wcet, YieldReport};
