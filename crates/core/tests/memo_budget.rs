//! The LRU memo budget ([`MemoDomain::with_budget`]), pinned:
//!
//! * unbounded domains never evict (the pre-budget behaviour);
//! * eviction is least-recently-*used* order — a hit refreshes an entry,
//!   so the victim is the stalest entry, not the oldest insert;
//! * a re-miss after eviction recomputes a bit-identical report (every
//!   memo key is deterministic), only the hit/miss/eviction bill moves;
//! * the per-table eviction counters stay consistent with the miss
//!   counters and the resident-entry count.

use std::sync::Arc;

use wcet_core::engine::{AnalysisEngine, MemoDomain};
use wcet_core::mode::Isolated;
use wcet_ir::synth::{fir, Placement};
use wcet_sim::config::MachineConfig;

/// Three tasks with distinct content fingerprints, all placed on core 0.
fn tasks() -> [wcet_ir::Program; 3] {
    [
        fir(4, 8, Placement::slot(0)),
        fir(6, 8, Placement::slot(0)),
        fir(8, 8, Placement::slot(0)),
    ]
}

fn engine_with(memo: &Arc<MemoDomain>) -> AnalysisEngine {
    AnalysisEngine::new(MachineConfig::symmetric(2)).with_memo(Arc::clone(memo))
}

#[test]
fn unbounded_domain_never_evicts() {
    let memo = Arc::new(MemoDomain::new());
    assert_eq!(memo.budget(), None);
    let engine = engine_with(&memo);
    let [a, b, c] = tasks();
    for task in [&a, &b, &c, &a, &b, &c] {
        engine.analyze(task, 0, 0, &Isolated).expect("analyses");
    }
    let stats = memo.stats();
    assert_eq!(stats.evictions(), 0);
    assert_eq!(stats.hierarchy_misses, 3);
    assert_eq!(stats.hierarchy_hits, 3);
    // One hierarchy + one L1 pair + one cost table + one bound per task.
    assert_eq!(memo.entries(), 12);
}

#[test]
fn lru_evicts_the_stalest_entry_not_the_oldest_insert() {
    let memo = Arc::new(MemoDomain::with_budget(2));
    assert_eq!(memo.budget(), Some(2));
    let engine = engine_with(&memo);
    let [a, b, c] = tasks();
    engine.analyze(&a, 0, 0, &Isolated).expect("analyses");
    engine.analyze(&b, 0, 0, &Isolated).expect("analyses");
    // Touch `a`: under LRU it is now fresher than `b`, so inserting `c`
    // must evict `b`. A FIFO/insert-order policy would evict `a` instead.
    engine.analyze(&a, 0, 0, &Isolated).expect("analyses");
    engine.analyze(&c, 0, 0, &Isolated).expect("analyses");
    assert!(memo.stats().hierarchy_evictions >= 1);

    // `a` survived: a full re-analysis is all hits, no misses.
    let before = memo.stats();
    let first = engine.analyze(&a, 0, 0, &Isolated).expect("analyses");
    let delta = memo.stats().since(&before);
    assert_eq!(delta.hierarchy_hits, 1);
    assert_eq!(delta.bound_hits, 1);
    assert_eq!(delta.hierarchy_misses, 0);
    assert_eq!(delta.bound_misses, 0);

    // `b` was the victim: its hierarchy re-misses and is recomputed.
    let before = memo.stats();
    engine.analyze(&b, 0, 0, &Isolated).expect("analyses");
    let delta = memo.stats().since(&before);
    assert_eq!(delta.hierarchy_misses, 1);
    assert_eq!(delta.hierarchy_hits, 0);

    // The refreshed entry still answers with the memoized value.
    let again = engine.analyze(&a, 0, 0, &Isolated).expect("analyses");
    assert_eq!(first, again);
}

#[test]
fn re_miss_after_eviction_recomputes_bit_identical_bounds() {
    let memo = Arc::new(MemoDomain::with_budget(1));
    let engine = engine_with(&memo);
    let [a, b, _] = tasks();
    let first = engine.analyze(&a, 0, 0, &Isolated).expect("analyses");
    engine.analyze(&b, 0, 0, &Isolated).expect("analyses");
    let again = engine.analyze(&a, 0, 0, &Isolated).expect("analyses");
    assert_eq!(first, again, "recomputed bound must be bit-identical");
    let stats = memo.stats();
    // a, b, a again: three misses per table, a single resident entry, so
    // every insert past the first evicted — and nothing ever hit.
    assert_eq!(stats.hierarchy_misses, 3);
    assert_eq!(stats.hierarchy_evictions, 2);
    assert_eq!(stats.bound_misses, 3);
    assert_eq!(stats.bound_evictions, 2);
    assert_eq!(stats.hits(), 0);
}

#[test]
fn eviction_counters_match_misses_minus_residents() {
    let memo = Arc::new(MemoDomain::with_budget(1));
    let engine = engine_with(&memo);
    for task in &tasks() {
        engine.analyze(task, 0, 0, &Isolated).expect("analyses");
    }
    let stats = memo.stats();
    // Each miss inserts exactly one entry and the cap is one, so every
    // table's eviction count is its miss count less the lone resident.
    assert_eq!(stats.hierarchy_evictions, stats.hierarchy_misses - 1);
    assert_eq!(stats.l1_evictions, stats.l1_misses - 1);
    assert_eq!(stats.cost_evictions, stats.cost_misses - 1);
    assert_eq!(stats.bound_evictions, stats.bound_misses - 1);
    assert_eq!(
        stats.evictions(),
        stats.hierarchy_evictions
            + stats.l1_evictions
            + stats.cost_evictions
            + stats.bound_evictions
    );
    assert_eq!(memo.entries(), 4);
}
