//! Worst-case basic-block costs from cache classifications and bus bounds
//! (the second half of the paper's low-level analysis, §2.1).
//!
//! For every block the model produces a *base* worst-case cost; accesses
//! classified `PERSISTENT` additionally produce a per-loop-entry *extra*
//! (their one possible miss), which IPET charges on the loop's entry edges
//! rather than on every iteration — the standard persistence encoding.

use std::collections::BTreeMap;

use wcet_cache::analysis::{CacheAnalysis, Classification, SiteId};
use wcet_cache::multilevel::HierarchyAnalysis;
use wcet_ir::{BlockId, Program};

use crate::timing::{instr_time, smt_instr_time, MemTimings, PipelineConfig};

/// Thread-level execution mode of the core running the task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoreMode {
    /// Single hardware thread.
    Single,
    /// Predictable SMT / thread-interleaved core with `threads` slots
    /// (PRET is `threads = 6`): see
    /// [`crate::timing::smt_instr_time`].
    PredictableSmt {
        /// Number of hardware threads sharing the pipeline.
        threads: u32,
    },
}

impl CoreMode {
    fn k(self) -> u64 {
        match self {
            CoreMode::Single => 1,
            CoreMode::PredictableSmt { threads } => u64::from(threads.max(1)),
        }
    }
}

/// Inputs of block-cost computation.
#[derive(Debug, Clone)]
pub struct CostInput {
    /// Pipeline geometry.
    pub pipeline: PipelineConfig,
    /// Memory-system latencies (with `mem_latency` = the controller's
    /// worst case).
    pub timings: MemTimings,
    /// Upper bound on the bus waiting time per memory transaction, from
    /// the arbiter's `worst_case_delay`; `None` means the task is not
    /// isolated on the bus and has **no finite WCET**.
    pub bus_wait_bound: Option<u64>,
    /// Core threading mode.
    pub mode: CoreMode,
}

/// Per-block worst-case costs plus persistence extras.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockCosts {
    /// Worst-case cost of each block, charged per execution.
    pub base: BTreeMap<BlockId, u64>,
    /// Extra cost charged once per entry of the loop headed by the key
    /// (sum of the `PERSISTENT` miss extras scoped to it).
    pub loop_entry_extras: BTreeMap<BlockId, u64>,
    /// One-time pipeline fill cost at task start.
    pub startup: u64,
}

impl BlockCosts {
    /// The cost of `block` (0 if unknown — cannot happen for blocks of the
    /// analysed program).
    #[must_use]
    pub fn cost(&self, block: BlockId) -> u64 {
        self.base.get(&block).copied().unwrap_or(0)
    }
}

/// Error: the configuration gives the task no finite WCET.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnboundedError;

impl std::fmt::Display for UnboundedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(
            "no finite WCET: the bus arbiter gives this requester no delay bound \
             (best-effort thread under fixed-priority arbitration)",
        )
    }
}

impl std::error::Error for UnboundedError {}

/// Worst-case extra of one access site, split into the always-paid part
/// and an optional per-scope extra.
struct SiteCost {
    base: u64,
    scope_extra: Option<(BlockId, u64)>,
}

fn site_cost(
    l1_class: Classification,
    l2: Option<&CacheAnalysis>,
    site: SiteId,
    t: &MemTimings,
    bus_wait: u64,
) -> SiteCost {
    let h1 = t.l1_hit_extra();
    // Worst cost of one trip past L1 (L2 lookup and beyond), given the L2
    // classification of this site.
    let l2_class = l2.and_then(|a| a.class(site));
    let beyond_l1_worst = || -> (u64, Option<(BlockId, u64)>) {
        match (t.l2_hit, l2_class) {
            // No L2 configured: straight to memory.
            (None, _) => (t.mem_extra(bus_wait) - h1, None),
            (Some(_), Some(Classification::AlwaysHit)) => (t.l2_hit_extra() - h1, None),
            (Some(_), Some(Classification::Persistent { scope })) => {
                // Pays the L2 hit path always; the single possible L2 miss
                // (memory path minus the L2-hit path) goes to the scope.
                (
                    t.l2_hit_extra() - h1,
                    Some((scope, t.mem_extra(bus_wait) - t.l2_hit_extra())),
                )
            }
            // AM, NC, or absent from the L2 map (conservative).
            (Some(_), _) => (t.mem_extra(bus_wait) - h1, None),
        }
    };
    match l1_class {
        Classification::AlwaysHit => SiteCost {
            base: h1,
            scope_extra: None,
        },
        Classification::AlwaysMiss | Classification::NotClassified => {
            let (beyond, extra) = beyond_l1_worst();
            SiteCost {
                base: h1 + beyond,
                scope_extra: extra,
            }
        }
        Classification::Persistent { scope } => {
            // Hit path always; at most one trip beyond L1 per scope entry.
            // That one trip is worst-cased all the way to memory (its L2
            // persistence cannot help: the single visit may be the miss).
            let beyond = match t.l2_hit {
                None => t.mem_extra(bus_wait) - h1,
                Some(_) => match l2_class {
                    Some(Classification::AlwaysHit) => t.l2_hit_extra() - h1,
                    _ => t.mem_extra(bus_wait) - h1,
                },
            };
            SiteCost {
                base: h1,
                scope_extra: Some((scope, beyond)),
            }
        }
    }
}

/// Computes worst-case block costs for `program` from its hierarchy
/// analysis.
///
/// # Errors
///
/// Returns [`UnboundedError`] if `input.bus_wait_bound` is `None` and the
/// program performs any access that may reach memory.
pub fn block_costs(
    program: &Program,
    hierarchy: &HierarchyAnalysis,
    input: &CostInput,
) -> Result<BlockCosts, UnboundedError> {
    let k = input.mode.k();
    let t = &input.timings;
    let mut base = BTreeMap::new();
    let mut loop_entry_extras: BTreeMap<BlockId, u64> = BTreeMap::new();

    // A site's class at L1 (I or D by kind).
    let l1_class = |site: SiteId, is_fetch: bool| -> Classification {
        let a = if is_fetch {
            &hierarchy.l1i
        } else {
            &hierarchy.l1d
        };
        a.class(site).unwrap_or(Classification::NotClassified)
    };

    for (b, blk) in program.cfg().iter() {
        let sites = program.accesses(b);
        // Group the block's sites per instruction slot: each slot has one
        // fetch plus at most one data access.
        let mut cost: u64 = 0;
        let mut site_iter = sites.iter().peekable();
        let mut needs_bus = false;

        let take_extra = |site: &wcet_ir::AccessSite,
                          is_fetch: bool,
                          extras: &mut BTreeMap<BlockId, u64>,
                          needs_bus: &mut bool|
         -> u64 {
            let id = (site.block, site.seq);
            let class = l1_class(id, is_fetch);
            // Whether this site can reach memory at all (for the
            // unbounded-bus check): anything not AH at L1 with a non-AH
            // possibility at L2.
            let sc = site_cost(
                class,
                hierarchy.l2.as_ref(),
                id,
                t,
                input.bus_wait_bound.unwrap_or(0),
            );
            let reaches_mem = match class {
                Classification::AlwaysHit => false,
                _ => !matches!(
                    (t.l2_hit, hierarchy.l2.as_ref().and_then(|a| a.class(id))),
                    (Some(_), Some(Classification::AlwaysHit))
                ),
            };
            if reaches_mem {
                *needs_bus = true;
            }
            if let Some((scope, amount)) = sc.scope_extra {
                let stretched = if amount > 0 { amount + (k - 1) } else { 0 };
                *extras.entry(scope).or_insert(0) += stretched;
            }
            sc.base
        };

        for (slot, ins) in blk.instrs().iter().enumerate() {
            let fetch_site = site_iter.next().expect("fetch site per slot");
            debug_assert_eq!(fetch_site.kind, wcet_ir::AccessKind::Fetch);
            let fetch_extra = take_extra(fetch_site, true, &mut loop_entry_extras, &mut needs_bus);
            let data_extra = if ins.mem_ref().is_some() {
                let data_site = site_iter.next().expect("data site after its fetch");
                take_extra(data_site, false, &mut loop_entry_extras, &mut needs_bus)
            } else {
                0
            };
            if k == 1 {
                cost += instr_time(ins, fetch_extra, data_extra);
            } else {
                // Fetch and data stalls realign to the thread's slot
                // independently, so each pays its own alignment.
                cost += k * u64::from(ins.exec_latency())
                    + crate::timing::smt_mem_stall(fetch_extra, k)
                    + crate::timing::smt_mem_stall(data_extra, k);
            }
            let _ = slot;
        }
        // Terminator slot: fetch only, executes like a 1-cycle instruction.
        let term_site = site_iter.next().expect("terminator fetch site");
        let term_extra = take_extra(term_site, true, &mut loop_entry_extras, &mut needs_bus);
        if k == 1 {
            cost += 1 + term_extra;
        } else {
            cost += smt_instr_time(1, term_extra, k);
        }
        debug_assert!(site_iter.next().is_none());

        if needs_bus && input.bus_wait_bound.is_none() {
            return Err(UnboundedError);
        }
        base.insert(b, cost);
    }

    Ok(BlockCosts {
        base,
        loop_entry_extras,
        startup: input.pipeline.startup_cycles() * k,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcet_cache::analysis::{AnalysisInput, LevelKind};
    use wcet_cache::config::CacheConfig;
    use wcet_cache::multilevel::{analyze_hierarchy, HierarchyConfig};
    use wcet_ir::synth::{fir, single_path, Placement};

    fn hierarchy(program: &wcet_ir::Program, with_l2: bool) -> (HierarchyAnalysis, MemTimings) {
        let l1i = CacheConfig::new(16, 2, 16, 1).expect("valid");
        let l1d = CacheConfig::new(16, 2, 32, 1).expect("valid");
        let l2cfg = CacheConfig::new(128, 4, 32, 4).expect("valid");
        let cfg = HierarchyConfig {
            l1i,
            l1d,
            l2: with_l2.then(|| AnalysisInput::level1(l2cfg, LevelKind::Unified)),
        };
        let h = analyze_hierarchy(program, &cfg);
        let t = MemTimings {
            l1_hit: 1,
            l2_hit: with_l2.then_some(4),
            bus_transfer: 8,
            mem_latency: 30,
        };
        (h, t)
    }

    fn input(t: MemTimings, bus: Option<u64>) -> CostInput {
        CostInput {
            pipeline: PipelineConfig::default(),
            timings: t,
            bus_wait_bound: bus,
            mode: CoreMode::Single,
        }
    }

    #[test]
    fn bigger_bus_wait_bound_raises_costs() {
        let p = fir(4, 8, Placement::default());
        let (h, t) = hierarchy(&p, true);
        let c0 = block_costs(&p, &h, &input(t, Some(0))).expect("bounded");
        let c9 = block_costs(&p, &h, &input(t, Some(9))).expect("bounded");
        let total0: u64 = c0.base.values().sum();
        let total9: u64 = c9.base.values().sum();
        assert!(total9 >= total0);
        assert!(total9 > total0, "some block must touch memory");
    }

    #[test]
    fn unbounded_bus_is_reported() {
        let p = fir(4, 8, Placement::default());
        let (h, t) = hierarchy(&p, true);
        assert_eq!(
            block_costs(&p, &h, &input(t, None)).unwrap_err(),
            UnboundedError
        );
    }

    #[test]
    fn persistence_moves_cost_to_loop_entries() {
        // single_path reuses a tiny data buffer every iteration: its loads
        // become PS; the per-iteration base must price them as hits, with
        // the misses showing up as loop-entry extras.
        let p = single_path(2, 50, Placement::default());
        let (h, t) = hierarchy(&p, false);
        let costs = block_costs(&p, &h, &input(t, Some(0))).expect("bounded");
        assert!(
            !costs.loop_entry_extras.is_empty(),
            "expected persistent accesses in the loop"
        );
        let extras: u64 = costs.loop_entry_extras.values().sum();
        assert!(extras > 0);
    }

    #[test]
    fn smt_mode_stretches_costs() {
        let p = fir(2, 4, Placement::default());
        let (h, t) = hierarchy(&p, false);
        let single = block_costs(&p, &h, &input(t, Some(0))).expect("bounded");
        let mut smt_in = input(t, Some(0));
        smt_in.mode = CoreMode::PredictableSmt { threads: 4 };
        let smt = block_costs(&p, &h, &smt_in).expect("bounded");
        for (b, &c1) in &single.base {
            let c4 = smt.base[b];
            assert!(c4 >= c1, "SMT cost must not shrink");
            assert!(c4 <= 4 * c1 + 4, "stretch is at most K plus alignment");
        }
        assert_eq!(smt.startup, 4 * single.startup);
    }

    #[test]
    fn l2_pays_off_when_l1_thrashes() {
        // A 1-line L1D thrashes on FIR's interleaved c/x/y streams; a big
        // L2 catches the reuse, so the L2 configuration must be cheaper
        // despite its extra lookup latency on the pure-miss path.
        let p = fir(4, 8, Placement::default());
        let l1i = CacheConfig::new(16, 2, 16, 1).expect("valid");
        let tiny_l1d = CacheConfig::new(1, 1, 32, 1).expect("valid");
        let l2cfg = CacheConfig::new(256, 8, 32, 4).expect("valid");
        let mk = |with_l2: bool| {
            let cfg = HierarchyConfig {
                l1i,
                l1d: tiny_l1d,
                l2: with_l2.then(|| AnalysisInput::level1(l2cfg, LevelKind::Unified)),
            };
            let h = analyze_hierarchy(&p, &cfg);
            let t = MemTimings {
                l1_hit: 1,
                l2_hit: with_l2.then_some(4),
                bus_transfer: 8,
                mem_latency: 30,
            };
            let c = block_costs(&p, &h, &input(t, Some(0))).expect("bounded");
            // Weight block costs by worst-case execution counts (what IPET
            // does); extras are paid once per scope entry ≤ count(header).
            c.base
                .iter()
                .map(|(&b, &cost)| cost * p.max_block_count(b))
                .sum::<u64>()
                + c.loop_entry_extras
                    .iter()
                    .map(|(&h_, &e)| e * p.max_block_count(h_).max(1))
                    .sum::<u64>()
        };
        let with_l2 = mk(true);
        let without = mk(false);
        assert!(
            with_l2 < without,
            "L2 must pay off here ({with_l2} vs {without})"
        );
    }
}
