//! # wcet-pipeline — pipeline timing model and block-cost analysis
//!
//! The second half of the paper's low-level analysis (§2.1): computing the
//! worst-case execution cost of each basic block, given the cache
//! classifications (from `wcet-cache`) and bus delay bounds (from
//! `wcet-arbiter`).
//!
//! The [`timing`] module holds the *single* set of timing equations shared
//! with the `wcet-sim` simulator — the cornerstone of the toolkit's
//! testable soundness story. [`cost`] turns classifications into per-block
//! worst-case costs (with persistence extras attached to loop entries),
//! and [`smt`] models the SMT issue policies of Barre et al. \[1\] and
//! CarCore \[22\].

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cost;
pub mod smt;
pub mod timing;

pub use cost::{block_costs, BlockCosts, CoreMode, CostInput, UnboundedError};
pub use smt::SmtPolicy;
pub use timing::{instr_time, smt_instr_time, MemTimings, PipelineConfig};
