//! The timing semantics shared by the WCET analyser and the cycle-level
//! simulator.
//!
//! One set of equations, two consumers: the analyser feeds them worst-case
//! inputs (classifications, arbiter bounds), the simulator feeds them
//! concrete inputs (actual hits, actual waits). Soundness of the whole
//! toolkit then reduces to soundness of those inputs, which the sibling
//! crates property-test.
//!
//! The modelled core is in-order, scalar and stall-based — the
//! *timing-compositional* design point the survey's references \[20, 31\]
//! identify as free of timing anomalies, and the one the MERASA/CarCore/
//! PRET designs (paper §5.3) adopt. Consequences used throughout:
//! `miss ≥ hit` monotonicity (treating `NOT_CLASSIFIED` as miss is sound)
//! and per-instruction additivity (block cost = Σ instruction times, plus
//! one pipeline fill at task start).

use wcet_ir::Instr;

/// Latencies of the memory system as seen by one core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemTimings {
    /// L1 (I or D) hit latency in cycles; 1 means a hit never stalls.
    pub l1_hit: u32,
    /// L2 lookup latency (on an L1 miss), if an L2 exists.
    pub l2_hit: Option<u32>,
    /// Bus occupancy of one line transfer to/from memory.
    pub bus_transfer: u64,
    /// Memory-controller access latency (worst case for analysis, actual
    /// for simulation).
    pub mem_latency: u64,
}

impl MemTimings {
    /// Extra cycles (beyond the instruction's EX occupancy) of an access
    /// that hits in L1.
    #[must_use]
    pub fn l1_hit_extra(&self) -> u64 {
        u64::from(self.l1_hit.saturating_sub(1))
    }

    /// Extra cycles of an access that misses L1 and hits L2.
    ///
    /// # Panics
    ///
    /// Panics if no L2 is configured.
    #[must_use]
    pub fn l2_hit_extra(&self) -> u64 {
        self.l1_hit_extra() + u64::from(self.l2_hit.expect("l2_hit_extra requires an L2"))
    }

    /// Extra cycles of an access that goes to memory, given the bus
    /// waiting time `bus_wait` (actual or bound).
    ///
    /// The path is: L1 lookup, L2 lookup (if any), bus wait, line transfer,
    /// memory access.
    #[must_use]
    pub fn mem_extra(&self, bus_wait: u64) -> u64 {
        self.l1_hit_extra()
            + self.l2_hit.map_or(0, u64::from)
            + bus_wait
            + self.bus_transfer
            + self.mem_latency
    }
}

/// Total time of one instruction given its memory stall cycles, on a
/// single-threaded core.
#[must_use]
pub fn instr_time(instr: &Instr, fetch_extra: u64, data_extra: u64) -> u64 {
    u64::from(instr.exec_latency()) + fetch_extra + data_extra
}

/// Total time of one instruction on a K-thread fine-grained/SMT core in
/// *predictable* mode: the thread owns every K-th issue slot, so execution
/// cycles stretch by K, while memory stalls overlap with other threads and
/// only pay a slot re-alignment penalty of at most `K − 1`.
///
/// `mem_extra` must be the stall of **one** memory component (fetch *or*
/// data); an instruction with both pays [`smt_mem_stall`] twice — each
/// stall realigns to the thread's next slot independently.
///
/// The PRET thread-interleaved pipeline (paper §5.3) is the `k = 6` case.
#[must_use]
pub fn smt_instr_time(exec: u64, mem_extra: u64, k: u64) -> u64 {
    k * exec + smt_mem_stall(mem_extra, k)
}

/// Worst-case cost of one memory stall on a K-slot core: the stall itself
/// plus realignment to the thread's next owned slot (`K − 1` at most).
/// Zero stalls cost nothing (the access pipelines within the slot).
#[must_use]
pub fn smt_mem_stall(mem_extra: u64, k: u64) -> u64 {
    debug_assert!(k >= 1);
    if mem_extra > 0 {
        mem_extra + (k - 1)
    } else {
        0
    }
}

/// Pipeline geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PipelineConfig {
    /// Number of stages; the fill cost `depth − 1` is paid once at task
    /// start (the simplified context parameterisation of Rochange &
    /// Sainrat \[32\]: on this compositional core the only inter-block
    /// context is whether the pipeline is filled).
    pub depth: u32,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig { depth: 5 }
    }
}

impl PipelineConfig {
    /// One-time pipeline fill cost.
    #[must_use]
    pub fn startup_cycles(&self) -> u64 {
        u64::from(self.depth.saturating_sub(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcet_ir::isa::{r, AluOp, Operand};

    fn timings(l2: Option<u32>) -> MemTimings {
        MemTimings {
            l1_hit: 1,
            l2_hit: l2,
            bus_transfer: 8,
            mem_latency: 30,
        }
    }

    #[test]
    fn hit_paths() {
        let t = timings(Some(4));
        assert_eq!(t.l1_hit_extra(), 0);
        assert_eq!(t.l2_hit_extra(), 4);
        assert_eq!(t.mem_extra(0), 4 + 8 + 30);
        assert_eq!(t.mem_extra(7), 4 + 7 + 8 + 30);
    }

    #[test]
    fn no_l2_path() {
        let t = timings(None);
        assert_eq!(t.mem_extra(5), 5 + 8 + 30);
    }

    #[test]
    fn multi_cycle_l1() {
        let t = MemTimings {
            l1_hit: 2,
            l2_hit: Some(4),
            bus_transfer: 8,
            mem_latency: 30,
        };
        assert_eq!(t.l1_hit_extra(), 1);
        assert_eq!(t.l2_hit_extra(), 5);
    }

    #[test]
    fn instr_time_adds_components() {
        let mul = Instr::Alu {
            op: AluOp::Mul,
            dst: r(1),
            lhs: r(2),
            rhs: Operand::Imm(3),
        };
        assert_eq!(instr_time(&mul, 0, 0), 3);
        assert_eq!(instr_time(&mul, 4, 10), 17);
        assert_eq!(instr_time(&Instr::Nop, 0, 0), 1);
    }

    #[test]
    fn smt_stretch() {
        // K=1 degenerates to the single-threaded model.
        assert_eq!(smt_instr_time(1, 0, 1), 1);
        assert_eq!(smt_instr_time(1, 42, 1), 43);
        // K=4: exec stretches, stalls pay slot re-alignment.
        assert_eq!(smt_instr_time(1, 0, 4), 4);
        assert_eq!(smt_instr_time(3, 0, 4), 12);
        assert_eq!(smt_instr_time(1, 10, 4), 4 + 13);
    }

    #[test]
    fn miss_dominates_hit() {
        // The monotonicity the NC-as-miss argument relies on.
        let t = timings(Some(4));
        assert!(t.mem_extra(0) >= t.l2_hit_extra());
        assert!(t.l2_hit_extra() >= t.l1_hit_extra());
    }

    #[test]
    fn startup() {
        assert_eq!(PipelineConfig::default().startup_cycles(), 4);
        assert_eq!(PipelineConfig { depth: 1 }.startup_cycles(), 0);
    }
}
