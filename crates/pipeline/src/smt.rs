//! SMT core policies (paper §4.2/§5.3: Barre et al. \[1\], Mische et al.
//! \[22\], Cazorla et al. \[5\]).
//!
//! A simultaneous-multithreaded core shares both storage resources
//! (instruction queues — partitioned here, following Barre et al.) and
//! bandwidth resources (issue slots — the policy below). Only the
//! *predictable* policy admits a per-thread WCET bound; the free-for-all
//! policy is provided so experiments can show the measured variance that
//! makes it unanalysable.

use std::fmt;

/// Issue-slot allocation policy of an SMT core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SmtPolicy {
    /// Strict round-robin issue slots + partitioned queues: thread `t` may
    /// use the pipeline only on cycles `≡ t (mod K)`. Analysable: each
    /// thread behaves like a `K×`-slower private core
    /// (see [`smt_instr_time`](crate::timing::smt_instr_time)).
    PredictableRoundRobin,
    /// Greedy issue: any ready thread may take any cycle (oldest-ready
    /// first). Better average throughput, but a thread's timing depends on
    /// its co-runners — no isolation, no per-thread bound.
    FreeForAll,
}

impl SmtPolicy {
    /// The per-thread worst-case slowdown factor w.r.t. running alone on
    /// the core, if one exists.
    ///
    /// `threads` is the number of hardware threads sharing the pipeline.
    #[must_use]
    pub fn slowdown_bound(self, threads: u32) -> Option<u32> {
        match self {
            SmtPolicy::PredictableRoundRobin => Some(threads.max(1)),
            SmtPolicy::FreeForAll => None,
        }
    }

    /// True if a thread's WCET can be computed without knowing the
    /// co-runners (the paper's task-isolation criterion, §3.3).
    #[must_use]
    pub fn isolates(self) -> bool {
        matches!(self, SmtPolicy::PredictableRoundRobin)
    }
}

impl fmt::Display for SmtPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SmtPolicy::PredictableRoundRobin => "predictable-rr",
            SmtPolicy::FreeForAll => "free-for-all",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predictable_bounds_scale_with_threads() {
        assert_eq!(SmtPolicy::PredictableRoundRobin.slowdown_bound(4), Some(4));
        assert_eq!(SmtPolicy::PredictableRoundRobin.slowdown_bound(1), Some(1));
        assert_eq!(SmtPolicy::PredictableRoundRobin.slowdown_bound(0), Some(1));
    }

    #[test]
    fn free_for_all_has_no_bound() {
        assert_eq!(SmtPolicy::FreeForAll.slowdown_bound(4), None);
        assert!(!SmtPolicy::FreeForAll.isolates());
        assert!(SmtPolicy::PredictableRoundRobin.isolates());
    }
}
