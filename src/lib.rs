//! # wcet-toolkit — timing analysability of parallel architectures
//!
//! Umbrella crate of the workspace reproducing *"An Overview of Approaches
//! Towards the Timing Analysability of Parallel Architectures"*
//! (Christine Rochange, PPES 2011). It re-exports every member crate:
//!
//! | Crate | Role |
//! |---|---|
//! | [`ir`] | programs, CFGs, flow facts, workload generator, interpreter |
//! | [`ilp`] | exact rational simplex + branch & bound (IPET backend) |
//! | [`cache`] | must/may/persistence cache analyses, partitioning, locking, bypass |
//! | [`pipeline`] | the shared timing model and block-cost analysis |
//! | [`arbiter`] | bus arbiters and memory controller (bounds + cycle-level) |
//! | [`sim`] | deterministic cycle-level multicore/SMT simulator |
//! | [`sched`] | task sets, lifetime windows, WCET ⇄ schedule fixpoint |
//! | [`core`] | the WCET analyser: IPET + the paper's three approach families, plus the batch [`core::engine::AnalysisEngine`] |
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory and
//! `EXPERIMENTS.md` for the regenerable experiment suite (E01–E12).
//!
//! ## Quickstart
//!
//! ```
//! use wcet_toolkit::core::analyzer::Analyzer;
//! use wcet_toolkit::ir::synth::{matmul, Placement};
//! use wcet_toolkit::sim::config::MachineConfig;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let machine = MachineConfig::symmetric(4);
//! let task = matmul(8, Placement::slot(0));
//! let report = Analyzer::new(machine).wcet_isolated(&task, 0, 0)?;
//! println!("WCET({}) = {} cycles", report.task, report.wcet);
//! # Ok(())
//! # }
//! ```
//!
//! For many tasks (or many modes), batch through the memoizing parallel
//! engine instead — identical reports, one call:
//!
//! ```
//! use wcet_toolkit::core::engine::{AnalysisEngine, Job};
//! use wcet_toolkit::core::mode::Isolated;
//! use wcet_toolkit::ir::synth::{fir, matmul, Placement};
//! use wcet_toolkit::sim::config::MachineConfig;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let engine = AnalysisEngine::new(MachineConfig::symmetric(4));
//! let (a, b) = (matmul(6, Placement::slot(0)), fir(4, 16, Placement::slot(1)));
//! let reports = engine.analyze_batch(&[Job::new(&a, 0, &Isolated), Job::new(&b, 1, &Isolated)]);
//! for report in reports {
//!     let report = report?;
//!     println!("WCET({}) = {} cycles", report.task, report.wcet);
//! }
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use wcet_arbiter as arbiter;
pub use wcet_cache as cache;
pub use wcet_core as core;
pub use wcet_ilp as ilp;
pub use wcet_ir as ir;
pub use wcet_pipeline as pipeline;
pub use wcet_sched as sched;
pub use wcet_sim as sim;
