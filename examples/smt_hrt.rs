//! CarCore-style hard-real-time threading (paper §5.3, Mische et al.):
//! one HRT thread gets full temporal isolation — its WCET is computable
//! and co-runner-independent — while best-effort threads are honestly
//! reported as unboundable.
//!
//! Run with: `cargo run --example smt_hrt`

use wcet_toolkit::arbiter::ArbiterKind;
use wcet_toolkit::cache::partition::PartitionPlan;
use wcet_toolkit::core::analyzer::AnalysisError;
use wcet_toolkit::core::engine::AnalysisEngine;
use wcet_toolkit::core::mode::Isolated;
use wcet_toolkit::core::validate::observe;
use wcet_toolkit::ir::synth::{self, Placement};
use wcet_toolkit::pipeline::smt::SmtPolicy;
use wcet_toolkit::sim::config::{CoreKind, MachineConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 2-core machine; core 0 is a 4-thread predictable SMT core whose
    // thread 0 is the HRT thread (bus priority), cores' L2 slices are
    // private.
    let mut machine = MachineConfig::symmetric(2);
    machine.cores[0].kind = CoreKind::Smt {
        threads: 4,
        policy: SmtPolicy::PredictableRoundRobin,
        partitioned_l1: true,
    };
    {
        let l2 = machine.l2.as_mut().expect("has L2");
        l2.partition = PartitionPlan::even_columns(&l2.cache, 2)?;
    }
    // HRT = bus slot of (core 0, thread 0) = 0.
    machine.bus.arbiter = ArbiterKind::FixedPriority { hrt: 0 };

    let engine = AnalysisEngine::new(machine.clone());
    let hrt_task = synth::crc(32, Placement::slot(0));

    // The HRT thread is analysable in isolation…
    let report = engine.analyze(&hrt_task, 0, 0, &Isolated)?;
    println!(
        "HRT thread WCET = {} cycles (bus wait bound {:?}, 4× SMT stretch included)",
        report.wcet, report.bus_wait_bound
    );

    // …while a best-effort sibling genuinely has no bound.
    let be_task = synth::fir(4, 16, Placement::slot(1));
    match engine.analyze(&be_task, 0, 1, &Isolated) {
        Err(AnalysisError::Unbounded) => {
            println!("best-effort thread: no finite WCET (as CarCore promises only the HRT)");
        }
        other => panic!("expected Unbounded for the best-effort thread, got {other:?}"),
    }

    // Validate the HRT bound under a full house.
    let obs = observe(
        &machine,
        (0, 0, hrt_task),
        vec![
            (0, 1, synth::matmul(8, Placement::slot(1))),
            (0, 2, synth::bsort(8, Placement::slot(2))),
            (0, 3, synth::switchy(6, 30, 6, Placement::slot(3))),
            (
                1,
                0,
                synth::pointer_chase_stride(2048, 4000, 32, Placement::slot(4)),
            ),
        ],
        report.wcet,
        300_000_000,
    )?;
    println!(
        "observed under full house = {} cycles  (margin {:.2}×) — sound: {}",
        obs.observed,
        obs.ratio(),
        obs.sound()
    );
    assert!(obs.sound());
    Ok(())
}
