//! Bandwidth arbitration face-off (paper §5.2 vs §5.3): TDMA's
//! offset-blind bound degrades with slot length, the offset-aware analysis
//! only rescues single-path code, and round-robin's `N·L − 1` is the
//! robust all-rounder.
//!
//! Run with: `cargo run --example tdma_vs_roundrobin`

use wcet_toolkit::arbiter::{RoundRobin, Slot, Tdma};
use wcet_toolkit::cache::config::CacheConfig;
use wcet_toolkit::core::report::Table;
use wcet_toolkit::core::static_ctrl::{tdma_offset_aware_wcet, wcet_unlocked, StaticParams};
use wcet_toolkit::core::IpetOptions;
use wcet_toolkit::ir::synth::{single_path, Placement};
use wcet_toolkit::pipeline::cost::CoreMode;
use wcet_toolkit::pipeline::timing::{MemTimings, PipelineConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n_cores = 4u64;
    let transfer = 8u64;
    let params = StaticParams {
        l1i: CacheConfig::new(32, 2, 16, 1)?,
        l1d: CacheConfig::new(4, 1, 32, 1)?, // small: keeps bus traffic alive
        l2: None,
        timings: MemTimings {
            l1_hit: 1,
            l2_hit: None,
            bus_transfer: transfer,
            mem_latency: 30,
        },
        bus_wait_bound: Some(0),
        pipeline: PipelineConfig::default(),
        mode: CoreMode::Single,
    };
    let task = single_path(6, 32, Placement::slot(0));

    let mut table = Table::new(
        "Single-path task, 4-core bus: WCET bound per arbitration scheme",
        &["scheme", "per-transaction wait bound", "WCET bound"],
    );

    // Round-robin: D = N·L − 1, offset-free.
    let rr_wait = RoundRobin::bound(n_cores, transfer);
    let mut rr_params = params.clone();
    rr_params.bus_wait_bound = Some(rr_wait);
    let rr = wcet_unlocked(&task, &rr_params, &IpetOptions::default())?;
    table.row(["round-robin".into(), rr_wait.to_string(), rr.to_string()]);

    for slot_len in [transfer, 2 * transfer, 4 * transfer] {
        let slots: Vec<Slot> = (0..n_cores as usize)
            .map(|owner| Slot {
                owner,
                len: slot_len,
            })
            .collect();
        let tdma = Tdma::new(n_cores as usize, slots)?;
        // Offset-blind: the only sound choice on multi-path code.
        let blind_wait = tdma.worst_delay(0, transfer).expect("fits");
        let mut blind_params = params.clone();
        blind_params.bus_wait_bound = Some(blind_wait);
        let blind = wcet_unlocked(&task, &blind_params, &IpetOptions::default())?;
        table.row([
            format!("TDMA slot={slot_len} (offset-blind)"),
            blind_wait.to_string(),
            blind.to_string(),
        ]);
        // Offset-aware: exact, but valid only because this task is
        // single-path.
        let aware = tdma_offset_aware_wcet(&task, &params, &tdma, 0)?;
        table.row([
            format!("TDMA slot={slot_len} (offset-aware)"),
            "exact per offset".into(),
            aware.to_string(),
        ]);
    }
    table.note("offset-aware TDMA analysis requires single-path code (Rosén et al. / paper §5.2)");
    println!("{table}");
    Ok(())
}
