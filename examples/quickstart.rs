//! Quickstart: analyse one task on a 4-core machine under two modes in a
//! single engine batch, and validate the bound against the cycle-level
//! simulator.
//!
//! Run with: `cargo run --example quickstart`

use wcet_toolkit::core::engine::{AnalysisEngine, Job};
use wcet_toolkit::core::mode::{Isolated, Solo};
use wcet_toolkit::core::validate::observe;
use wcet_toolkit::ir::pretty::listing;
use wcet_toolkit::ir::synth::{matmul, Placement};
use wcet_toolkit::sim::config::MachineConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A workload: 8×8 integer matrix multiply, placed at slot 0 of the
    //    address space.
    let task = matmul(8, Placement::slot(0));
    println!(
        "--- task ---\n{}",
        &listing(&task)[..400.min(listing(&task).len())]
    );

    // 2. A machine: 4 in-order cores, private L1s, shared L2, round-robin
    //    bus, predictable memory controller.
    let machine = MachineConfig::symmetric(4);

    // 3. Static WCET analysis, two modes, one batch call. The engine
    //    memoizes shared intermediates (here: the per-mode hierarchy
    //    fixpoints) and fans jobs out across worker threads.
    let engine = AnalysisEngine::new(machine.clone());
    let reports = engine.analyze_batch(&[Job::new(&task, 0, &Solo), Job::new(&task, 0, &Isolated)]);
    let solo = reports[0].as_ref().map_err(Clone::clone)?;
    let isolated = reports[1].as_ref().map_err(Clone::clone)?;
    println!(
        "solo     WCET = {:>8} cycles   (unsafe on shared hardware!)",
        solo.wcet
    );
    println!(
        "isolated WCET = {:>8} cycles   (safe against any co-runners)",
        isolated.wcet
    );
    println!(
        "L1I classes (AH, AM, PS, NC) = {:?}   L1D = {:?}",
        isolated.l1i_hist, isolated.l1d_hist
    );

    // 4. Validate: run the task alone on the simulated machine.
    let obs = observe(&machine, (0, 0, task), vec![], isolated.wcet, 100_000_000)?;
    println!(
        "simulated (alone) = {:>8} cycles   bound/observed = {:.2}×",
        obs.observed,
        obs.ratio()
    );
    assert!(obs.sound(), "the isolation bound must dominate any run");
    Ok(())
}
