//! Quickstart: analyse one task on a 4-core machine and validate the
//! bound against the cycle-level simulator.
//!
//! Run with: `cargo run --example quickstart`

use wcet_toolkit::core::analyzer::Analyzer;
use wcet_toolkit::core::validate::observe;
use wcet_toolkit::ir::pretty::listing;
use wcet_toolkit::ir::synth::{matmul, Placement};
use wcet_toolkit::sim::config::MachineConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A workload: 8×8 integer matrix multiply, placed at slot 0 of the
    //    address space.
    let task = matmul(8, Placement::slot(0));
    println!("--- task ---\n{}", &listing(&task)[..400.min(listing(&task).len())]);

    // 2. A machine: 4 in-order cores, private L1s, shared L2, round-robin
    //    bus, predictable memory controller.
    let machine = MachineConfig::symmetric(4);

    // 3. Static WCET analysis, three ways.
    let analyzer = Analyzer::new(machine.clone());
    let solo = analyzer.wcet_solo(&task, 0, 0)?;
    let isolated = analyzer.wcet_isolated(&task, 0, 0)?;
    println!("solo     WCET = {:>8} cycles   (unsafe on shared hardware!)", solo.wcet);
    println!("isolated WCET = {:>8} cycles   (safe against any co-runners)", isolated.wcet);
    println!(
        "L1I classes (AH, AM, PS, NC) = {:?}   L1D = {:?}",
        isolated.l1i_hist, isolated.l1d_hist
    );

    // 4. Validate: run the task alone on the simulated machine.
    let obs = observe(&machine, (0, 0, task), vec![], isolated.wcet, 100_000_000)?;
    println!(
        "simulated (alone) = {:>8} cycles   bound/observed = {:.2}×",
        obs.observed,
        obs.ratio()
    );
    assert!(obs.sound(), "the isolation bound must dominate any run");
    Ok(())
}
