//! Joint analysis of a shared L2 (paper §4.1): the WCET of a task degrades
//! as more co-runners' footprints are taken into account — and lifetime
//! analysis (Li et al.) wins some of it back when releases keep tasks
//! apart. The WCET ⇄ schedule fixpoint re-queries the same joint analyses
//! round after round, so the memoizing engine pays off directly here.
//!
//! Run with: `cargo run --example shared_cache_joint`

use std::collections::BTreeMap;

use wcet_toolkit::cache::config::CacheConfig;
use wcet_toolkit::core::engine::AnalysisEngine;
use wcet_toolkit::core::mode::{Footprint, JointRefs};
use wcet_toolkit::core::report::Table;
use wcet_toolkit::ir::synth::{self, Placement};
use wcet_toolkit::sched::{lifetime_fixpoint, Task, TaskId, TaskSet};
use wcet_toolkit::sim::config::MachineConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A modest shared L2 (64 sets × 4 ways) and small L1Ds: the victim
    // leans on the L2, so co-runner footprints genuinely hurt.
    let mut machine = MachineConfig::symmetric(4);
    machine.l2.as_mut().expect("has L2").cache = CacheConfig::new(64, 4, 32, 4)?;
    for c in &mut machine.cores {
        c.l1d = CacheConfig::new(2, 1, 32, 1)?;
        c.l1i = CacheConfig::new(8, 1, 16, 1)?;
    }
    let engine = AnalysisEngine::new(machine);

    // The victim's code footprint exceeds its L1I but fits the L2: its
    // loop fetches lean on the shared L2, where co-runners hurt.
    let victim = synth::switchy(16, 50, 20, Placement::slot(0));
    let bullies: Vec<_> = (1..4u32)
        .map(|i| synth::matmul(16, Placement::slot(i)))
        .collect();
    let footprints: Vec<_> = bullies
        .iter()
        .enumerate()
        .map(|(i, b)| engine.l2_footprint(b, i + 1))
        .collect::<Result<_, _>>()?;

    let mut table = Table::new(
        "Joint shared-L2 analysis: WCET vs number of considered co-runners",
        &["co-runners", "victim WCET", "vs alone"],
    );
    let alone = engine.analyze(&victim, 0, 0, &JointRefs(&[]))?.wcet;
    for k in 0..=footprints.len() {
        let refs: Vec<&Footprint> = footprints[..k].iter().collect();
        let wcet = engine.analyze(&victim, 0, 0, &JointRefs(&refs))?.wcet;
        table.row([
            k.to_string(),
            wcet.to_string(),
            format!("{:.2}×", wcet as f64 / alone as f64),
        ]);
    }
    println!("{table}");

    // Lifetime refinement: stagger releases so τ0 never overlaps anyone.
    let mut tasks = vec![Task {
        name: victim.name().into(),
        core: 0,
        priority: 1,
        release: 0,
        predecessors: vec![],
    }];
    for (i, b) in bullies.iter().enumerate() {
        tasks.push(Task {
            name: b.name().into(),
            core: i + 1,
            priority: 1,
            release: 5_000_000,
            predecessors: vec![],
        });
    }
    let ts = TaskSet::new(tasks)?;
    let bcet: BTreeMap<TaskId, u64> = ts.ids().map(|t| (t, 0)).collect();
    let programs: Vec<_> = std::iter::once(&victim).chain(bullies.iter()).collect();
    let result = lifetime_fixpoint(
        &ts,
        &bcet,
        |task, interfering| {
            let idx = task.0 as usize;
            let refs: Vec<&Footprint> = interfering
                .iter()
                .map(|o| &footprints[(o.0 as usize).saturating_sub(1).min(footprints.len() - 1)])
                .collect();
            // Every fixpoint round re-queries overlapping subsets; the
            // engine memo makes repeats (same task, same interference)
            // cache hits instead of fresh fixpoints + ILP solves.
            engine
                .analyze(programs[idx], ts.task(task).core, 0, &JointRefs(&refs))
                .expect("analyses")
                .wcet
        },
        8,
    );
    let stats = engine.memo_stats();
    println!(
        "lifetime refinement: victim interferers {} (was {}), WCET {} (all-overlap: {}), {} rounds",
        result.interference[&TaskId(0)].len(),
        bullies.len(),
        result.wcet[&TaskId(0)],
        {
            let refs: Vec<&Footprint> = footprints.iter().collect();
            engine.analyze(&victim, 0, 0, &JointRefs(&refs))?.wcet
        },
        result.iterations,
    );
    println!(
        "engine memo: {} hits / {} lookups across the fixpoint",
        stats.hits(),
        stats.lookups()
    );
    Ok(())
}
