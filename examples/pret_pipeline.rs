//! PRET-style precision-timed execution (paper §5.3, Lickly et al.):
//! a 6-thread interleaved pipeline with a memory wheel gives every thread
//! *bit-exact* repeatable timing, whatever its siblings run.
//!
//! Run with: `cargo run --example pret_pipeline`

use wcet_toolkit::arbiter::ArbiterKind;
use wcet_toolkit::core::engine::AnalysisEngine;
use wcet_toolkit::core::mode::Isolated;
use wcet_toolkit::core::validate::run_machine;
use wcet_toolkit::ir::synth::{self, Placement};
use wcet_toolkit::ir::Program;
use wcet_toolkit::pipeline::smt::SmtPolicy;
use wcet_toolkit::sim::config::{CoreKind, MachineConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut machine = MachineConfig::symmetric(1);
    machine.cores[0].kind = CoreKind::Smt {
        threads: 6,
        policy: SmtPolicy::PredictableRoundRobin,
        partitioned_l1: true,
    };
    // The memory wheel: each of the 6 threads owns a fixed window.
    machine.bus.arbiter = ArbiterKind::MemoryWheel {
        window: machine.bus.transfer,
    };
    // PRET threads use private scratchpad-like storage: drop the shared L2
    // so no storage state is shared at all.
    machine.l2 = None;

    let engine = AnalysisEngine::new(machine.clone());
    let thread0 = synth::fir(4, 12, Placement::slot(0));
    let report = engine.analyze(&thread0, 0, 0, &Isolated)?;
    println!(
        "thread 0 WCET = {} cycles (6× interleave, wheel wait bound {:?})",
        report.wcet, report.bus_wait_bound
    );

    // Repeatable timing: run thread 0 with three different sibling mixes.
    type Mix = (&'static str, Vec<(usize, usize, Program)>);
    let mixes: Vec<Mix> = vec![
        ("alone", vec![]),
        ("light", vec![(0, 1, synth::crc(8, Placement::slot(1)))]),
        (
            "full house",
            (1..6usize)
                .map(|t| {
                    (
                        0,
                        t,
                        synth::pointer_chase(32, 100, Placement::slot(t as u32)),
                    )
                })
                .collect(),
        ),
    ];
    let mut first: Option<u64> = None;
    for (label, others) in mixes {
        let mut loads = vec![(0, 0, thread0.clone())];
        loads.extend(others);
        let cycles = run_machine(&machine, loads, 300_000_000)?.cycles(0, 0);
        println!("thread 0 with {label:<10} = {cycles} cycles");
        match first {
            None => first = Some(cycles),
            Some(c) => assert_eq!(c, cycles, "PRET timing must be repeatable"),
        }
        assert!(cycles <= report.wcet, "bound violated");
    }
    println!(
        "bit-exact repeatability confirmed; bound holds with {:.2}× margin",
        report.wcet as f64 / first.unwrap_or(1) as f64
    );
    Ok(())
}
