//! The batch engine: analyse a whole task set in one call, in parallel,
//! with memoized intermediates — and compare against sequential per-task
//! `Analyzer` calls.
//!
//! Run with: `cargo run --release --example engine_batch`

use std::time::Instant;

use wcet_bench::comparison_workload;
use wcet_toolkit::core::analyzer::Analyzer;
use wcet_toolkit::core::engine::AnalysisEngine;
use wcet_toolkit::core::mode::Isolated;
use wcet_toolkit::core::report::Table;
use wcet_toolkit::ir::Program;
use wcet_toolkit::sched::{Task, TaskSet};
use wcet_toolkit::sim::config::MachineConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let machine = MachineConfig::symmetric(4);

    // The shared 8-kernel comparison workload, spread round-robin over
    // the four cores (same one `run_all` measures).
    let programs: Vec<(usize, Program)> = comparison_workload();

    // Sequential reference: one Analyzer call per task.
    let analyzer = Analyzer::new(machine.clone());
    let t0 = Instant::now();
    let sequential: Vec<_> = programs
        .iter()
        .map(|(core, p)| analyzer.wcet_isolated(p, *core, 0))
        .collect::<Result<_, _>>()?;
    let seq = t0.elapsed();

    // Batch: one engine call over the whole task set.
    let set = TaskSet::new(
        programs
            .iter()
            .enumerate()
            .map(|(i, (core, p))| Task {
                name: p.name().to_string(),
                core: *core,
                priority: i as u32,
                release: 0,
                predecessors: vec![],
            })
            .collect(),
    )?;
    let engine = AnalysisEngine::new(machine);
    let plain: Vec<Program> = programs.iter().map(|(_, p)| p.clone()).collect();
    let t1 = Instant::now();
    let batch = engine.analyze_task_set(&set, &plain, &Isolated);
    let par = t1.elapsed();

    let mut table = Table::new(
        "Task-set batch analysis (isolated mode)",
        &["task", "core", "WCET", "batch == sequential"],
    );
    for ((core, p), (seq_rep, batch_rep)) in programs.iter().zip(sequential.iter().zip(&batch)) {
        let batch_rep = batch_rep.as_ref().map_err(Clone::clone)?;
        table.row([
            p.name().to_string(),
            core.to_string(),
            batch_rep.wcet.to_string(),
            (seq_rep == batch_rep).to_string(),
        ]);
        assert_eq!(
            seq_rep, batch_rep,
            "batch must reproduce sequential results"
        );
    }
    println!("{table}");
    println!(
        "sequential {:.1} ms, batch {:.1} ms ({:.2}× speedup on {} workers)",
        seq.as_secs_f64() * 1e3,
        par.as_secs_f64() * 1e3,
        seq.as_secs_f64() / par.as_secs_f64().max(1e-9),
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
    );
    Ok(())
}
