//! Task isolation (paper §3.3): a partitioned L2 plus a round-robin bus
//! make every task's WCET computable with zero knowledge of co-runners —
//! and the bound survives deliberately hostile ones.
//!
//! Run with: `cargo run --example multicore_isolation`

use wcet_toolkit::cache::partition::PartitionPlan;
use wcet_toolkit::core::analyzer::Analyzer;
use wcet_toolkit::core::report::Table;
use wcet_toolkit::core::validate::observe;
use wcet_toolkit::ir::synth::{self, Placement};
use wcet_toolkit::sim::config::MachineConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut machine = MachineConfig::symmetric(4);
    {
        let l2 = machine.l2.as_mut().expect("symmetric machine has an L2");
        l2.partition = PartitionPlan::even_columns(&l2.cache, 4)?;
    }
    let analyzer = Analyzer::new(machine.clone());

    let tasks = [
        synth::fir(6, 24, Placement::slot(0)),
        synth::crc(48, Placement::slot(0)),
        synth::bsort(10, Placement::slot(0)),
    ];
    let hostile = |exclude: usize| {
        (0..4usize)
            .filter(|&c| c != exclude)
            .map(|c| {
                (c, 0, synth::pointer_chase_stride(2048, 5000, 32, Placement::slot(c as u32)))
            })
            .collect::<Vec<_>>()
    };

    let mut table = Table::new(
        "Isolation: WCET computed without knowing co-runners, validated against hostile ones",
        &["task", "isolated WCET", "observed (hostile)", "margin"],
    );
    for task in tasks {
        let report = analyzer.wcet_isolated(&task, 0, 0)?;
        let obs = observe(&machine, (0, 0, task.clone()), hostile(0), report.wcet, 300_000_000)?;
        assert!(obs.sound(), "{}: bound violated!", task.name());
        table.row([
            task.name().to_string(),
            report.wcet.to_string(),
            obs.observed.to_string(),
            format!("{:.2}×", obs.ratio()),
        ]);
    }
    table.note("partitioned L2 (2 ways/core) + round-robin bus: D = N·L − 1");
    println!("{table}");
    Ok(())
}
