//! Task isolation (paper §3.3): a partitioned L2 plus a round-robin bus
//! make every task's WCET computable with zero knowledge of co-runners —
//! and the bound survives deliberately hostile ones. All three tasks are
//! analysed in one parallel engine batch.
//!
//! Run with: `cargo run --example multicore_isolation`

use wcet_toolkit::cache::partition::PartitionPlan;
use wcet_toolkit::core::engine::{AnalysisEngine, Job};
use wcet_toolkit::core::mode::Isolated;
use wcet_toolkit::core::report::Table;
use wcet_toolkit::core::validate::observe;
use wcet_toolkit::ir::synth::{self, Placement};
use wcet_toolkit::sim::config::MachineConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut machine = MachineConfig::symmetric(4);
    {
        let l2 = machine.l2.as_mut().expect("symmetric machine has an L2");
        l2.partition = PartitionPlan::even_columns(&l2.cache, 4)?;
    }
    let engine = AnalysisEngine::new(machine.clone());

    let tasks = [
        synth::fir(6, 24, Placement::slot(0)),
        synth::crc(48, Placement::slot(0)),
        synth::bsort(10, Placement::slot(0)),
    ];
    let jobs: Vec<Job<'_>> = tasks.iter().map(|t| Job::new(t, 0, &Isolated)).collect();
    let reports = engine.analyze_batch(&jobs);
    let hostile = |exclude: usize| {
        (0..4usize)
            .filter(|&c| c != exclude)
            .map(|c| {
                (
                    c,
                    0,
                    synth::pointer_chase_stride(2048, 5000, 32, Placement::slot(c as u32)),
                )
            })
            .collect::<Vec<_>>()
    };

    let mut table = Table::new(
        "Isolation: WCET computed without knowing co-runners, validated against hostile ones",
        &["task", "isolated WCET", "observed (hostile)", "margin"],
    );
    for (task, report) in tasks.iter().zip(reports) {
        let report = report?;
        let obs = observe(
            &machine,
            (0, 0, task.clone()),
            hostile(0),
            report.wcet,
            300_000_000,
        )?;
        assert!(obs.sound(), "{}: bound violated!", task.name());
        table.row([
            task.name().to_string(),
            report.wcet.to_string(),
            obs.observed.to_string(),
            format!("{:.2}×", obs.ratio()),
        ]);
    }
    table.note("partitioned L2 (2 ways/core) + round-robin bus: D = N·L − 1");
    println!("{table}");
    Ok(())
}
