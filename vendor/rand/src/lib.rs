//! Offline stand-in for the [`rand`](https://docs.rs/rand) crate.
//!
//! The container building this workspace has no crates.io access, so the
//! workspace vendors the slice of the rand API it uses:
//! `StdRng::seed_from_u64` and `Rng::gen_range` over integer ranges.
//!
//! `StdRng` here is SplitMix64, **not** the real crate's ChaCha12 — the
//! workload generator only requires determinism per seed, not a specific
//! stream, and every artefact derived from seeds is regenerated from
//! source in this repository.

#![warn(missing_docs)]

pub mod rngs {
    //! Concrete generator types.

    /// The standard deterministic generator (SplitMix64 in this shim).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) state: u64,
    }
}

use rngs::StdRng;

/// Seedable construction (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> StdRng {
        StdRng {
            state: seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x5bf0_3635,
        }
    }
}

/// A range `gen_range` can sample a `T` from uniformly.
///
/// Generic over the output type (like real rand's `SampleRange<T>`) so
/// the sampled integer type is inferred from the call site.
pub trait SampleRange<T> {
    /// Draws one value from `rng`.
    fn sample(self, rng: &mut StdRng) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = self.end.abs_diff(self.start) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }

        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = hi.abs_diff(lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Value-generation methods (subset of `rand::Rng`).
pub trait Rng {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform draw from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T;
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }
}
