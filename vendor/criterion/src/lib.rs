//! Offline stand-in for the [`criterion`](https://docs.rs/criterion)
//! benchmark harness.
//!
//! The container building this workspace has no crates.io access, so the
//! workspace vendors the slice of the criterion API its `benches/` use:
//! [`Criterion`], [`BenchmarkId`], benchmark groups, `bench_function` /
//! `bench_with_input`, and the [`criterion_group!`] / [`criterion_main!`]
//! macros. Measurement is a simple mean over a fixed iteration budget —
//! no statistics, outlier rejection, or HTML reports.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// How long each benchmark is sampled for, per measurement.
const TARGET_TIME: Duration = Duration::from_millis(500);

/// The top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    /// Smoke mode (`cargo bench -- --test`, mirroring real criterion):
    /// run every benchmark body exactly once, measure nothing. CI uses
    /// this so benches compile *and* run without paying for timing.
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let test_mode = self.test_mode;
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            test_mode,
            _criterion: self,
        }
    }

    /// Benchmarks one closure.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        let mut g = self.benchmark_group(name.clone());
        g.bench_function("", f);
        g.finish();
        self
    }
}

/// A named benchmark identifier (`group/function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{}/{parameter}", function.into()),
        }
    }

    /// An id made of a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// A group of related benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    test_mode: bool,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples taken per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks one closure.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.sample_size, self.test_mode);
        f(&mut b);
        b.report(&self.name, &id.to_string());
        self
    }

    /// Benchmarks one closure against a borrowed input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.sample_size, self.test_mode);
        f(&mut b, input);
        b.report(&self.name, &id.to_string());
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Timing driver handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    test_mode: bool,
    mean: Option<Duration>,
    iters: u64,
}

impl Bencher {
    fn new(sample_size: usize, test_mode: bool) -> Bencher {
        Bencher {
            sample_size,
            test_mode,
            mean: None,
            iters: 0,
        }
    }

    /// Times `routine`, repeating it until the per-benchmark time budget
    /// or the sample budget is exhausted, whichever comes first. In
    /// `--test` mode the routine runs exactly once, untimed.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            self.iters = 1;
            return;
        }
        // One untimed warmup iteration.
        black_box(routine());
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            black_box(routine());
            iters += 1;
            if iters >= self.sample_size as u64 || start.elapsed() >= TARGET_TIME {
                break;
            }
        }
        self.mean = Some(start.elapsed() / u32::try_from(iters).unwrap_or(u32::MAX));
        self.iters = iters;
    }

    fn report(&self, group: &str, id: &str) {
        let label = if id.is_empty() {
            group.to_string()
        } else {
            format!("{group}/{id}")
        };
        match self.mean {
            Some(mean) => {
                println!(
                    "bench {label:<48} {:>12.3?} /iter ({} iters)",
                    mean, self.iters
                );
            }
            None if self.test_mode && self.iters == 1 => {
                println!("bench {label:<48} ok (test mode, 1 iter)");
            }
            None => println!("bench {label:<48} (no measurement)"),
        }
    }
}

/// An identity function that defeats constant-folding of benchmark bodies.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
