//! Value-generation strategies (no shrinking).

use crate::test_runner::TestRng;

/// A source of random values of one type.
///
/// Mirrors proptest's `Strategy<Value = T>` shape closely enough for
/// `impl Strategy<Value = T>` return types and the combinators used in
/// this workspace.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end.abs_diff(self.start);
                self.start.wrapping_add((rng.next_u64() % span as u64) as $t)
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = hi.abs_diff(lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
