//! The deterministic case runner.

use std::fmt::Debug;
use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::strategy::Strategy;

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of successful cases required.
    pub cases: u32,
    /// Maximum rejected cases (`prop_assume!`) tolerated globally.
    pub max_global_rejects: u32,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            cases: 64,
            max_global_rejects: 4096,
        }
    }
}

impl Config {
    /// A default config with `cases` successful cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Config {
        Config {
            cases,
            ..Config::default()
        }
    }
}

/// Why a single case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case's assumptions did not hold; generate a fresh one.
    Reject(String),
    /// A `prop_assert*` failed.
    Fail(String),
}

impl TestCaseError {
    /// A failed assertion.
    #[must_use]
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    /// A rejected assumption.
    #[must_use]
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }
}

/// The per-case RNG: SplitMix64, seeded deterministically per case.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds a generator.
    #[must_use]
    pub fn new(seed: u64) -> TestRng {
        TestRng {
            state: seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(0x1234_5678),
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Runs `config.cases` generated cases of `body` over `strategy`.
///
/// # Panics
///
/// Panics (failing the enclosing `#[test]`) on the first failing case,
/// printing the generated inputs; there is no shrinking.
pub fn run_cases<S, F>(config: &Config, strategy: &S, name: &str, body: F)
where
    S: Strategy,
    S::Value: Debug,
    F: Fn(S::Value) -> Result<(), TestCaseError>,
{
    let mut rejects = 0u32;
    let mut case = 0u32;
    let mut attempt = 0u64;
    while case < config.cases {
        let mut rng = TestRng::new((u64::from(case) << 32) ^ attempt);
        attempt += 1;
        let value = strategy.generate(&mut rng);
        let shown = format!("{value:?}");
        let outcome = catch_unwind(AssertUnwindSafe(|| body(value)));
        match outcome {
            Ok(Ok(())) => case += 1,
            Ok(Err(TestCaseError::Reject(why))) => {
                rejects += 1;
                assert!(
                    rejects <= config.max_global_rejects,
                    "{name}: too many prop_assume! rejections (last: {why})"
                );
            }
            Ok(Err(TestCaseError::Fail(msg))) => {
                panic!("{name}: case {case} failed: {msg}\n  inputs: {shown}")
            }
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| payload.downcast_ref::<&str>().copied())
                    .unwrap_or("<non-string panic>");
                panic!("{name}: case {case} panicked: {msg}\n  inputs: {shown}")
            }
        }
    }
}
