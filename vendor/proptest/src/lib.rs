//! Offline stand-in for the [`proptest`](https://docs.rs/proptest) crate.
//!
//! The container building this workspace has no crates.io access, so the
//! workspace vendors the small slice of the proptest API its test suites
//! use: the [`proptest!`] macro, integer-range / tuple / [`Just`] /
//! mapped strategies, [`collection::vec`], and the `prop_assert*` /
//! `prop_assume!` macros.
//!
//! Differences from real proptest, by design:
//!
//! * **Deterministic**: case `k` of every test derives its RNG seed from
//!   `k` alone, so runs are reproducible without a persistence file.
//! * **No shrinking**: a failing case reports the generated inputs
//!   verbatim (they are printed via `Debug`) and panics.

#![warn(missing_docs)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares a block of property tests.
///
/// Supports the subset of the real macro's grammar used in this
/// workspace: an optional leading `#![proptest_config(expr)]`, then test
/// functions whose arguments are `pattern in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!($crate::test_runner::Config::default(); $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let strategy = ($($strat,)+);
                $crate::test_runner::run_cases(
                    &config,
                    &strategy,
                    stringify!($name),
                    |__proptest_values| {
                        let ($($arg,)+) = __proptest_values;
                        $body
                        Ok(())
                    },
                );
            }
        )*
    };
}

/// `assert!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// `assert_eq!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: `{:?}` == `{:?}`",
            lhs,
            rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if !(*lhs == *rhs) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "{} (`{:?}` != `{:?}`)",
                format!($($fmt)*),
                lhs,
                rhs
            )));
        }
    }};
}

/// `assert_ne!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(*lhs != *rhs, "assertion failed: `{:?}` != `{:?}`", lhs, rhs);
    }};
}

/// Rejects the current case (it is regenerated, not counted as run).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::reject(stringify!(
                $cond
            )));
        }
    };
}
