//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A vector-length specification: a fixed size or a half-open range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty vec-size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// Generates `Vec`s whose elements come from `element` and whose length
/// falls in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u64;
        let len = self.size.lo + (rng.next_u64() % span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
